package experiments

import (
	"fmt"
	"math"

	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/stats"
)

func init() { register("figure10", Figure10) }

// boundAtSize computes the AVG error bound on a corpus from a sample of
// exactly size frames, repaired with a correction set of corrSize frames,
// averaged over a few trials. It mirrors the Section 5.3.2 protocol, where
// absolute sample *sizes* (not fractions) make the two differently-sized
// videos comparable.
func boundAtSize(spec *profile.Spec, size, corrSize int, root *stats.Stream, trials int) (float64, error) {
	n := spec.Video.NumFrames()
	if size > n {
		size = n
	}
	var sum float64
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		population := spec.TruePopulation()
		sample := samplePrefix(population, size, s.Child(1))
		est, err := estimate.Smokescreen(spec.Agg, sample, n, spec.Params)
		if err != nil {
			return 0, err
		}
		if corrSize > 0 {
			corr, err := profile.BuildCorrectionAt(spec, corrSize, s.Child(2))
			if err != nil {
				return 0, err
			}
			repaired, err := corr.Repaired(spec.Agg, est, spec.Params, true)
			if err != nil {
				return 0, err
			}
			est = repaired
		}
		sum += capBound(est.ErrBound)
	}
	return sum / float64(trials), nil
}

// boundAtResolution computes the repaired AVG bound under a resolution
// intervention with a fixed sample size, averaged over trials.
func boundAtResolution(spec *profile.Spec, p, size, corrSize int, root *stats.Stream, trials int) (float64, error) {
	n := spec.Video.NumFrames()
	if size > n {
		size = n
	}
	var sum float64
	for trial := 0; trial < trials; trial++ {
		s := root.Child(uint64(trial))
		frames := s.Child(1).SampleWithoutReplacement(n, size)
		raw := outputsAt(spec, p, frames)
		est, err := estimate.Smokescreen(spec.Agg, raw, n, spec.Params)
		if err != nil {
			return 0, err
		}
		corr, err := profile.BuildCorrectionAt(spec, corrSize, s.Child(2))
		if err != nil {
			return 0, err
		}
		repaired, err := corr.Repaired(spec.Agg, est, spec.Params, false)
		if err != nil {
			return 0, err
		}
		sum += capBound(repaired.ErrBound)
	}
	return sum / float64(trials), nil
}

// Figure10 reproduces the paper's Figure 10: profile similarity between
// visually similar videos. Video A (MVI_40771, 1720 frames) is the target;
// video B (MVI_40775, 975 frames) is the same camera at a different time.
// The target profile of A uses a 500-frame correction set; when A's access
// is limited to 50 frames the profile deviates substantially, while B's
// 500-frame profile tracks A's target closely — so a similar video can
// stand in when the target is too sensitive to touch.
func Figure10(cfg Config) (*Report, error) {
	const corrTarget = 500
	wA := Workload{Dataset: "mvi-40771", Model: "yolov4", Agg: estimate.AVG}
	wB := Workload{Dataset: "mvi-40775", Model: "yolov4", Agg: estimate.AVG}
	specA, err := wA.Spec()
	if err != nil {
		return nil, err
	}
	specB, err := wB.Spec()
	if err != nil {
		return nil, err
	}
	trials := cfg.Trials
	if trials > 10 {
		trials = 10
	}
	root := stats.NewStream(cfg.Seed).Child(0xa00)

	report := &Report{
		ID:    "figure10",
		Title: "Profile similarity between similar videos (Figure 10)",
	}

	// Left panel: sample-size sweep at native resolution.
	sizes := []int{5, 10, 20, 30, 40, 50, 60, 80, 100}
	if cfg.Quick {
		sizes = []int{10, 30, 60}
	}
	left := &Table{
		Title:  "Figure 10 (left) — frame-sampling sweep, resolution 608x608",
		Header: []string{"sample size", "target A (corr 500)", "|A limited to 50 - target|", "|B (corr 500) - target|"},
	}
	var maxLimitedDiff, maxBDiff float64
	for _, size := range sizes {
		target, err := boundAtSize(specA, size, corrTarget, root.ChildN(1, uint64(size)), trials)
		if err != nil {
			return nil, err
		}
		// Limited access: at most 50 frames of A may be touched, for the
		// sample and the correction alike.
		limitedSize := size
		if limitedSize > 50 {
			limitedSize = 50
		}
		limited, err := boundAtSize(specA, limitedSize, 50, root.ChildN(2, uint64(size)), trials)
		if err != nil {
			return nil, err
		}
		similar, err := boundAtSize(specB, size, corrTarget, root.ChildN(3, uint64(size)), trials)
		if err != nil {
			return nil, err
		}
		limitedDiff := math.Abs(limited - target)
		bDiff := math.Abs(similar - target)
		maxLimitedDiff = math.Max(maxLimitedDiff, limitedDiff)
		maxBDiff = math.Max(maxBDiff, bDiff)
		left.Rows = append(left.Rows, []string{
			fmt.Sprintf("%d", size), fmtF(target), fmtF(limitedDiff), fmtF(bDiff),
		})
	}
	report.Tables = append(report.Tables, left)

	// Right panel: resolution sweep at sample size 500.
	resolutions := specA.Model.Resolutions(10)
	if cfg.Quick {
		resolutions = []int{608, 320, 96}
	}
	right := &Table{
		Title:  "Figure 10 (right) — resolution sweep, sample size 500",
		Header: []string{"resolution", "A (corr 500)", "B (corr 500)", "|A - B|"},
	}
	var maxResDiff float64
	for _, p := range resolutions {
		a, err := boundAtResolution(specA, p, 500, corrTarget, root.ChildN(4, uint64(p)), trials)
		if err != nil {
			return nil, err
		}
		b, err := boundAtResolution(specB, p, 500, corrTarget, root.ChildN(5, uint64(p)), trials)
		if err != nil {
			return nil, err
		}
		d := math.Abs(a - b)
		maxResDiff = math.Max(maxResDiff, d)
		right.Rows = append(right.Rows, []string{fmt.Sprintf("%dx%d", p, p), fmtF(a), fmtF(b), fmtF(d)})
	}
	report.Tables = append(report.Tables, right)

	report.Notes = append(report.Notes,
		fmt.Sprintf("Similar video B tracks A's target profile within %.4f on the sampling sweep (limited-access deviation up to %.4f)", maxBDiff, maxLimitedDiff),
		fmt.Sprintf("Resolution-sweep difference between A and B is at most %.4f (paper: within 5%%)", maxResDiff),
	)
	return report, nil
}

// outputsAt evaluates the spec's per-frame outputs for explicit frames at
// resolution p (AVG uses raw counts, so no transform applies here).
func outputsAt(spec *profile.Spec, p int, frames []int) []float64 {
	return seriesAt(spec.Video, spec.Model, spec.Class, p, frames)
}
