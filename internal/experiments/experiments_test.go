package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"smokescreen/internal/estimate"
)

func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	report, err := Run(id, QuickConfig())
	if err != nil {
		t.Fatalf("Run(%q): %v", id, err)
	}
	if report.ID != id {
		t.Fatalf("report ID %q", report.ID)
	}
	if len(report.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var buf bytes.Buffer
	if err := report.Render(&buf); err != nil {
		t.Fatalf("rendering %s: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s rendered empty", id)
	}
	return report
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestIDsRegistered(t *testing.T) {
	ids := IDs()
	want := []string{"calibration", "figure3", "figure4", "figure5", "figure6", "figure7", "figure8", "figure9", "figure10", "timing", "claims", "ablations", "modelaccuracy", "bandwidth"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered (have %v)", id, ids)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("figure99", QuickConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := Run("figure3", Config{}); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestFigure3Shapes(t *testing.T) {
	report := runQuick(t, "figure3")
	if len(report.Tables) != 2 {
		t.Fatalf("%d tables", len(report.Tables))
	}
	for _, table := range report.Tables {
		first := cellFloat(t, table.Rows[0][2])
		last := cellFloat(t, table.Rows[len(table.Rows)-1][2])
		if first != 0 {
			t.Fatalf("%s: error at native resolution = %v, want 0", table.Title, first)
		}
		if last <= first {
			t.Fatalf("%s: error did not grow with degradation (%v -> %v)", table.Title, first, last)
		}
	}
}

func TestFigure4BoundsDominateAndOrder(t *testing.T) {
	report := runQuick(t, "figure4")
	for _, note := range report.Notes {
		if strings.Contains(note, "WARNING") {
			t.Fatalf("figure4 warning: %s", note)
		}
	}
	for _, table := range report.Tables {
		for _, row := range table.Rows {
			trueErr := cellFloat(t, row[1])
			ours := cellFloat(t, row[2])
			if ours < trueErr {
				t.Fatalf("%s: bound %v below true error %v", table.Title, ours, trueErr)
			}
		}
		// Our bound is tighter than the safe baselines at the smallest
		// fraction (where the paper's gap is widest).
		row := table.Rows[0]
		ours := cellFloat(t, row[2])
		for i, h := range table.Header {
			if !strings.HasPrefix(h, "bound (") {
				continue
			}
			if strings.Contains(h, "EBGS") || strings.Contains(h, "Hoeffding") || strings.Contains(h, "Stein") {
				if b := cellFloat(t, row[i]); b < ours {
					t.Fatalf("%s: %s bound %v tighter than ours %v at smallest fraction", table.Title, h, b, ours)
				}
			}
		}
	}
}

func TestFigure5FailureRates(t *testing.T) {
	report := runQuick(t, "figure5")
	if len(report.Tables) != 3 {
		t.Fatalf("%d tables", len(report.Tables))
	}
	// At least one workload must show CLT exceeding the nominal rate; the
	// COUNT workload is the canonical case.
	exceeded := false
	for _, table := range report.Tables {
		for _, row := range table.Rows {
			if cellFloat(t, row[1]) > 5 {
				exceeded = true
			}
		}
	}
	if !exceeded {
		t.Fatal("CLT never exceeded its nominal failure rate")
	}
}

func TestFigure6RepairIsSafe(t *testing.T) {
	report := runQuick(t, "figure6")
	unsafeSeen := false
	for _, table := range report.Tables {
		for _, row := range table.Rows {
			trueErr := cellFloat(t, row[1])
			corrected := cellFloat(t, row[3])
			if corrected < trueErr*0.999 {
				t.Fatalf("%s / %s: corrected bound %v below true error %v", table.Title, row[0], corrected, trueErr)
			}
			if strings.Contains(row[4], "YES") {
				unsafeSeen = true
				uncorrected := cellFloat(t, row[2])
				if uncorrected >= trueErr {
					t.Fatalf("%s / %s: row marked unsafe but bound %v >= true %v", table.Title, row[0], uncorrected, trueErr)
				}
			}
		}
	}
	if !unsafeSeen {
		t.Fatal("no red-circle (unsafe uncorrected bound) cases reproduced")
	}
}

func TestFigure7Anomaly(t *testing.T) {
	report := runQuick(t, "figure7")
	for _, note := range report.Notes {
		if strings.Contains(note, "WARNING") {
			t.Fatalf("figure7: %s", note)
		}
	}
}

func TestFigure8Distribution(t *testing.T) {
	report := runQuick(t, "figure8")
	table := report.Tables[0]
	var total608, total384 int
	var mean608, mean384 float64
	for _, row := range table.Rows {
		c := cellFloat(t, row[0])
		n608 := cellFloat(t, row[1])
		n384 := cellFloat(t, row[2])
		total608 += int(n608)
		total384 += int(n384)
		mean608 += c * n608
		mean384 += c * n384
	}
	if total608 == 0 || total608 != total384 {
		t.Fatalf("histogram totals %d vs %d", total608, total384)
	}
	if mean384/float64(total384) <= mean608/float64(total608) {
		t.Fatal("384x384 distribution not shifted right of the truth")
	}
}

func TestFigure9CurvesDecrease(t *testing.T) {
	report := runQuick(t, "figure9")
	table := report.Tables[0]
	first := cellFloat(t, table.Rows[0][1])
	last := cellFloat(t, table.Rows[len(table.Rows)-1][1])
	if last >= first {
		t.Fatalf("err_b(v) did not decrease with correction size: %v -> %v", first, last)
	}
}

func TestFigure10Similarity(t *testing.T) {
	report := runQuick(t, "figure10")
	left := report.Tables[0]
	// B must track the target better than limited-A on the whole sweep
	// (sum of differences).
	var limitedSum, bSum float64
	for _, row := range left.Rows {
		limitedSum += cellFloat(t, row[2])
		bSum += cellFloat(t, row[3])
	}
	if bSum >= limitedSum {
		t.Fatalf("similar video (%v) did not beat limited access (%v)", bSum, limitedSum)
	}
}

func TestTimingDominatedByModel(t *testing.T) {
	report := runQuick(t, "timing")
	for _, note := range report.Notes {
		if strings.Contains(note, "WARNING") {
			t.Fatalf("timing: %s", note)
		}
	}
}

func TestClaimsPositive(t *testing.T) {
	report := runQuick(t, "claims")
	if len(report.Tables) != 2 {
		t.Fatalf("%d tables", len(report.Tables))
	}
	// Tightness gains must be positive everywhere.
	for _, row := range report.Tables[0].Rows {
		if cellFloat(t, row[1]) <= 0 {
			t.Fatalf("no tightness gain for %s", row[0])
		}
	}
}

func TestCalibrationClose(t *testing.T) {
	report := runQuick(t, "calibration")
	table := report.Tables[0]
	for _, row := range table.Rows {
		person := cellFloat(t, row[3])
		paperPerson := cellFloat(t, row[4])
		if absFloat(person-paperPerson) > 8 {
			t.Fatalf("%s: person fraction %v%% far from paper %v%%", row[0], person, paperPerson)
		}
		face := cellFloat(t, row[5])
		paperFace := cellFloat(t, row[6])
		if absFloat(face-paperFace) > 3 {
			t.Fatalf("%s: face fraction %v%% far from paper %v%%", row[0], face, paperFace)
		}
	}
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestAblations(t *testing.T) {
	report := runQuick(t, "ablations")
	if len(report.Tables) != 5 {
		t.Fatalf("%d ablation tables", len(report.Tables))
	}
	// Ablation 5: the full-access sketch is more rank-accurate than
	// sampling, which in turn touches far fewer frames.
	sketchRows := report.Tables[4].Rows
	if cellFloat(t, sketchRows[1][2]) > cellFloat(t, sketchRows[0][2]) {
		t.Fatal("full-access sketch less accurate than sampling")
	}
	// Ablation 1: ours strictly tighter than EBGS at every n.
	for _, row := range report.Tables[0].Rows {
		ebgs := cellFloat(t, row[1])
		ours := cellFloat(t, row[3])
		if ours >= ebgs {
			t.Fatalf("ours %v not tighter than EBGS %v at n=%s", ours, ebgs, row[0])
		}
	}
	// Ablation 2: reuse saves invocations.
	rows := report.Tables[1].Rows
	naive := cellFloat(t, rows[0][1])
	reused := cellFloat(t, rows[1][1])
	if reused >= naive {
		t.Fatalf("reuse (%v) did not save invocations vs naive (%v)", reused, naive)
	}
	// Ablation 4: noise raises the true error, corrected bound stays safe.
	noiseRows := report.Tables[3].Rows
	first := cellFloat(t, noiseRows[0][1])
	last := cellFloat(t, noiseRows[len(noiseRows)-1][1])
	if last <= first {
		t.Fatalf("added noise did not raise the true error: %v -> %v", first, last)
	}
	for _, row := range noiseRows {
		if cellFloat(t, row[3]) < cellFloat(t, row[1])*0.999 {
			t.Fatalf("corrected bound below true error at sigma %s", row[0])
		}
	}
}

func TestModelAccuracyDegrades(t *testing.T) {
	report := runQuick(t, "modelaccuracy")
	for _, table := range report.Tables {
		first := cellFloat(t, table.Rows[0][3])
		last := cellFloat(t, table.Rows[len(table.Rows)-1][3])
		if first < 0.5 {
			t.Fatalf("%s: native F1 %v too low", table.Title, first)
		}
		if last >= first {
			t.Fatalf("%s: F1 did not degrade (%v -> %v)", table.Title, first, last)
		}
	}
}

func TestBandwidthMonotone(t *testing.T) {
	report := runQuick(t, "bandwidth")
	table := report.Tables[0]
	prev := -1.0
	for _, row := range table.Rows {
		bytes := cellFloat(t, row[2])
		if prev > 0 && bytes >= prev {
			t.Fatalf("bytes did not shrink down the degradation ladder: %v -> %v", prev, bytes)
		}
		prev = bytes
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		Title:  "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
	}
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "333333") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestWorkloadSpec(t *testing.T) {
	w := Workload{Dataset: "small", Model: "yolov4", Agg: estimate.COUNT}
	spec, err := w.Spec()
	if err != nil {
		t.Fatal(err)
	}
	pop := spec.TruePopulation()
	for _, v := range pop {
		if v != 0 && v != 1 {
			t.Fatal("COUNT workload population not indicators")
		}
	}
	if _, err := (Workload{Dataset: "nope", Model: "yolov4"}).Spec(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := (Workload{Dataset: "small", Model: "nope"}).Spec(); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSweepFractions(t *testing.T) {
	fs := sweepFractions(0.1, 4)
	want := []float64{0.025, 0.05, 0.075, 0.1}
	for i := range want {
		if diff := fs[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("sweepFractions = %v", fs)
		}
	}
}
