package experiments

import (
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/parallel"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func init() { register("figure9", Figure9) }

// Figure9 reproduces the paper's Figure 9: the corrected error bound as a
// function of the correction-set fraction, for two representative
// intervention sets on UA-DETRAC, with the fraction the elbow heuristic
// determines marked. The two curves differ but the determined fraction is
// appropriate for both — the claim of Section 5.2.3.
func Figure9(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "figure9",
		Title: "Corrected error bound vs correction-set size (Figure 9)",
	}
	// The paper's two randomly selected intervention sets.
	interventions := []degrade.Setting{
		{SampleFraction: 0.1, Resolution: 256, Restricted: []scene.Class{scene.Person}},
		{SampleFraction: 0.05, Resolution: 320, Restricted: []scene.Class{scene.Face}},
	}
	fractions := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.1, 0.12}
	aggs := []estimate.Agg{estimate.AVG, estimate.MAX}
	if cfg.Quick {
		fractions = []float64{0.01, 0.02, 0.04, 0.08}
		aggs = aggs[:1]
	}

	for _, agg := range aggs {
		w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: agg}
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		// The elbow heuristic's determined fraction (from err_b(v) alone,
		// independent of the intervention sets — the point of Section 5.2.3).
		construction, err := profile.ConstructCorrection(spec, 0.2, stats.NewStream(cfg.Seed).Child(0x900))
		if err != nil {
			return nil, err
		}

		table := &Table{
			Title: fmt.Sprintf("Figure 9 — %s (elbow-determined fraction: %.2f)", w, construction.Fraction),
			Header: []string{
				"correction fraction",
				"err_b(v)",
				fmt.Sprintf("bound [%v]", interventions[0]),
				fmt.Sprintf("bound [%v]", interventions[1]),
			},
		}

		root := stats.NewStream(cfg.Seed).Child(0x901).Child(uint64(agg))
		n := spec.Video.NumFrames()
		// Degraded estimates are fixed per intervention set (single trial
		// per point in the paper's figure; we average a few for stability).
		trials := cfg.Trials
		if trials > 10 {
			trials = 10
		}
		for _, corrFrac := range fractions {
			m := int(float64(n)*corrFrac + 0.5)
			row := []string{fmt.Sprintf("%.2f", corrFrac)}
			// Independent trials fan out; per-trial slots are reduced in
			// trial order so the averages are bit-identical to the
			// sequential loop.
			type trialBounds struct {
				errV   float64
				bounds []float64
			}
			perTrial, err := parallel.Map(trials, cfg.Parallelism, func(trial int) (trialBounds, error) {
				s := root.ChildN(uint64(m), uint64(trial))
				corr, err := profile.BuildCorrectionAt(spec, m, s.Child(9))
				if err != nil {
					return trialBounds{}, err
				}
				tb := trialBounds{
					errV:   capBound(corr.Estimate.ErrBound),
					bounds: make([]float64, len(interventions)),
				}
				for ii, setting := range interventions {
					degraded, err := spec.UncorrectedEstimate(setting, s.Child(uint64(ii)))
					if err != nil {
						return trialBounds{}, err
					}
					bound, err := corr.Repair(spec.Agg, degraded, spec.Params)
					if err != nil {
						return trialBounds{}, err
					}
					tb.bounds[ii] = capBound(bound)
				}
				return tb, nil
			})
			if err != nil {
				return nil, err
			}
			var errV float64
			bounds := make([]float64, len(interventions))
			for _, tb := range perTrial {
				errV += tb.errV
				for ii, b := range tb.bounds {
					bounds[ii] += b
				}
			}
			row = append(row, fmtF(errV/float64(trials)))
			for _, b := range bounds {
				row = append(row, fmtF(b/float64(trials)))
			}
			table.Rows = append(table.Rows, row)
		}
		report.Tables = append(report.Tables, table)
		report.Notes = append(report.Notes, fmt.Sprintf(
			"%s: elbow heuristic stops at correction fraction %.2f after %d growth steps",
			w, construction.Fraction, len(construction.Steps)))
	}
	return report, nil
}
