package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"smokescreen/internal/estimate"
)

// The parallel trial loops must reproduce the sequential reports exactly:
// trials derive their randomness from stream children keyed by the trial
// index and are reduced in trial order, so every float sum matches
// bit-for-bit. Extra Ps are forced so goroutines genuinely interleave even
// on a single-CPU host.
func TestRunPanelParallelBitIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	// The small corpus keeps this fast enough for `make test-race`, where
	// instrumentation makes detector work an order of magnitude slower.
	w := Workload{Dataset: "small", Model: "yolov4", Agg: estimate.AVG}
	cfg := QuickConfig()
	cfg.Parallelism = 1
	seq, err := runPanel(w, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Parallelism = workers
		par, err := runPanel(w, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallelism=%d: panel differs from sequential:\n%+v\nvs\n%+v", workers, par, seq)
		}
	}
}

func TestFigure9ParallelBitIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("full figure-9 sweep exceeds the test timeout under the race detector; " +
			"the panel test exercises the same parallel trial reduction")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	cfg := QuickConfig()
	cfg.Parallelism = 1
	seq, err := Run("figure9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := Run("figure9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("figure9 differs under parallelism:\n%+v\nvs\n%+v", par, seq)
	}
}
