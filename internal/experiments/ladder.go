package experiments

import (
	"context"
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/stats"
)

func init() {
	register("ladder", LadderTradeoff)
	register("adversarial", Adversarial)
}

// LadderTradeoff profiles the built-in fidelity ladder end to end: for
// each rung of the default ladder it reports the rung's composite
// setting, the generated (repaired) error bound, the true error of the
// rung's estimate, and the detector work the rung costs — together with
// the cross-tier dedup the ladder planner achieves by sharing (view,
// resolution) work units. The claim mirrored from the paper's framing:
// stepping down the ladder trades bound tightness for privacy/cost
// monotonically, and every repaired bound still holds.
func LadderTradeoff(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "ladder",
		Title: "Fidelity ladder: per-rung bound/cost tradeoff",
	}
	workloads := []Workload{
		{Dataset: "night-street", Model: "mask-rcnn", Agg: estimate.AVG},
		{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG},
	}
	if cfg.Quick {
		workloads = workloads[:1]
	}
	for wi, w := range workloads {
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		ladder := plan.DefaultLadder(spec.Model)
		construction, err := profile.ConstructCorrection(spec, 0.2,
			stats.NewStream(cfg.Seed).ChildN(0x1ad, uint64(wi)))
		if err != nil {
			return nil, err
		}
		prof, err := profile.GenerateLadder(spec, ladder,
			profile.LadderOptions{Correction: construction.Correction, Parallelism: cfg.Parallelism},
			stats.NewStream(cfg.Seed).ChildN(0x1ad+1, uint64(wi)))
		if err != nil {
			return nil, err
		}

		table := &Table{
			Title:  fmt.Sprintf("Ladder — %s (correction %.0f%%)", w, construction.Fraction*100),
			Header: []string{"tier", "setting", "bound", "true err", "repaired", "sampled frames"},
		}
		held := true
		for _, pt := range prof.Points {
			trueErr, err := spec.TrueErrorOf(pt.Estimate.Value)
			if err != nil {
				return nil, err
			}
			if pt.Estimate.ErrBound < trueErr {
				held = false
			}
			table.Rows = append(table.Rows, []string{
				pt.Tier, pt.Setting.String(), fmtF(pt.Estimate.ErrBound), fmtF(trueErr),
				fmt.Sprintf("%v", pt.Repaired), fmt.Sprintf("%d", pt.Estimate.Sample),
			})
		}
		report.Tables = append(report.Tables, table)

		// Dedup accounting: compare per-tier sampled frames against the
		// planner's deduplicated work units.
		lp, err := plan.BuildLadder(context.Background(), spec.Video, spec.Model, ladder,
			stats.NewStream(cfg.Seed).ChildN(0x1ad+1, uint64(wi)))
		if err != nil {
			return nil, err
		}
		var requested, unique int
		for _, task := range lp.Tasks {
			if task.Plan != nil {
				requested += len(task.Plan.Sampled)
			}
		}
		units := lp.Units()
		for _, u := range units {
			unique += len(u.Frames)
		}
		report.Notes = append(report.Notes, fmt.Sprintf(
			"%s: %d tiers planned into %d work units; %d of %d sampled frames deduplicated; bounds held: %v",
			w, len(lp.Tasks), len(units), requested-unique, requested, held))
	}
	return report, nil
}

// Adversarial stresses the repaired bounds under the structured
// perturbations an adversarial deployment would pick — motion blur,
// coarse quantization and lens occlusion, alone and stacked. These are
// non-random interventions: the uncorrected bound may dip below the true
// error (the paper's red-circle failure), while the Algorithm 3 repaired
// bound must hold for every perturbation.
func Adversarial(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "adversarial",
		Title: "Adversarial structured perturbations: repaired bounds under blur/quantize/occlusion",
	}
	workloads := []Workload{
		{Dataset: "night-street", Model: "mask-rcnn", Agg: estimate.AVG},
		{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.MAX},
	}
	if cfg.Quick {
		workloads = workloads[:1]
	}
	f := 0.5
	if cfg.Quick {
		f = 0.1
	}
	perturbations := []struct {
		label   string
		setting degrade.Setting
	}{
		{"blur 9", degrade.Setting{SampleFraction: f, MotionBlur: 9}},
		{"blur 15", degrade.Setting{SampleFraction: f, MotionBlur: 15}},
		{"quantize 16", degrade.Setting{SampleFraction: f, Quantize: 16}},
		{"quantize 4", degrade.Setting{SampleFraction: f, Quantize: 4}},
		{"occlude 0.2", degrade.Setting{SampleFraction: f, Occlusion: 0.2}},
		{"occlude 0.4", degrade.Setting{SampleFraction: f, Occlusion: 0.4}},
		{"combined", degrade.Setting{SampleFraction: f, MotionBlur: 9, Quantize: 16, Occlusion: 0.2}},
	}
	if cfg.Quick {
		perturbations = []struct {
			label   string
			setting degrade.Setting
		}{perturbations[0], perturbations[2], perturbations[4], perturbations[6]}
	}
	for wi, w := range workloads {
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		corrFrac := correctionFraction(w)
		table := &Table{
			Title:  fmt.Sprintf("Adversarial — %s (f=%.2g, correction %d%%)", w, f, int(corrFrac*100)),
			Header: []string{"perturbation", "true err", "bound w/o corr", "bound w/ corr", "w/o corr unsafe", "held"},
		}
		violations := 0
		for si, p := range perturbations {
			row, err := evalSetting(spec, p.setting, corrFrac, cfg, uint64(0xadf+wi*100+si))
			if err != nil {
				return nil, err
			}
			heldRatio := row.Corrected >= row.TrueErr
			if !heldRatio {
				violations++
			}
			unsafe := ""
			if row.UncorrectedUnsafe {
				unsafe = "YES (red circle)"
			}
			table.Rows = append(table.Rows, []string{
				p.label, fmtF(row.TrueErr), fmtF(row.Uncorrected), fmtF(row.Corrected),
				unsafe, fmt.Sprintf("%v", heldRatio),
			})
		}
		report.Tables = append(report.Tables, table)
		report.Notes = append(report.Notes, fmt.Sprintf(
			"%s: repaired bound violated on %d of %d structured perturbations",
			w, violations, len(perturbations)))
	}
	return report, nil
}
