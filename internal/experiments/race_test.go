//go:build race

package experiments

// raceEnabled trims the parallel determinism tests when the race detector
// is on: instrumented detector sweeps over the paper corpora run an order
// of magnitude slower without adding race coverage beyond what the
// small-corpus panel test already exercises.
const raceEnabled = true
