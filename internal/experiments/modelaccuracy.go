package experiments

import (
	"fmt"

	"smokescreen/internal/evaluate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func init() { register("modelaccuracy", ModelAccuracy) }

// ModelAccuracy measures the detectors' *inherent* accuracy against scene
// ground truth across resolutions. The paper's usage model (Section 2.3)
// assumes administrators know this number and fold it into the error
// threshold they choose — profiles only measure degradation-induced error
// relative to the model's own full-quality outputs. This experiment
// supplies the missing column: precision/recall/F1 per (dataset, model,
// resolution), which is an extension of the paper's evaluation enabled by
// our simulator's ground-truth annotations (the paper had none for its
// real videos and explicitly treated model outputs as truth).
func ModelAccuracy(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "modelaccuracy",
		Title: "Detector inherent accuracy vs scene ground truth (extension)",
	}
	const iouThreshold = 0.3
	combos := []struct {
		dataset string
		model   string
	}{
		{"night-street", "mask-rcnn"},
		{"night-street", "yolov4"},
		{"ua-detrac", "yolov4"},
	}
	for _, combo := range combos {
		w := Workload{Dataset: combo.dataset, Model: combo.model}
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		n := spec.Video.NumFrames()
		var frames []int
		sub := n / 20
		if !cfg.Quick {
			sub = n / 5
		}
		frames = stats.NewStream(cfg.Seed).Child(0xacc).SampleWithoutReplacement(n, sub)

		table := &Table{
			Title:  fmt.Sprintf("Model accuracy — %s / %s (cars, IoU >= %.1f, %d frames)", combo.dataset, combo.model, iouThreshold, sub),
			Header: []string{"resolution", "precision", "recall", "F1"},
		}
		resolutions := spec.Model.Resolutions(10)
		if cfg.Quick {
			resolutions = []int{spec.Model.NativeInput, 192, 64}
		}
		for _, p := range resolutions {
			m := evaluate.Corpus(spec.Video, spec.Model, scene.Car, p, frames, iouThreshold)
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%dx%d", p, p),
				fmtF(m.Precision()), fmtF(m.Recall()), fmtF(m.F1()),
			})
		}
		report.Tables = append(report.Tables, table)
	}
	report.Notes = append(report.Notes,
		"Inherent accuracy is measured against simulator ground truth; the paper's own evaluation treats model outputs as truth (Section 2.3) and never measures this")
	return report, nil
}
