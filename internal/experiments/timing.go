package experiments

import (
	"fmt"
	"time"

	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/stats"
)

func init() { register("timing", Timing) }

// Timing reproduces the paper's Section 5.3.1 profile-generation time
// analysis: profiling the AVG car query with YOLOv4 on UA-DETRAC under ten
// resolution candidates with the determined correction fraction (0.04) as
// the largest sample fraction. The paper reports 6084 model invocations
// (10 x 4% of 15210 frames) dominating the total time, with the
// estimation stage taking only tens of milliseconds — the same structure
// must hold here because model outputs are evaluated lazily per sampled
// frame and reused across ascending fractions.
func Timing(cfg Config) (*Report, error) {
	w := Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG}
	spec, err := w.Spec()
	if err != nil {
		return nil, err
	}
	maxFraction := 0.04
	resolutions := spec.Model.Resolutions(10)
	fractions := []float64{0.01, 0.02, 0.03, 0.04}
	if cfg.Quick {
		resolutions = resolutions[:3]
		fractions = fractions[:2]
		maxFraction = 0.02
	}

	// Cold caches so invocation counting reflects one full profile run.
	detect.ResetCaches()
	root := stats.NewStream(cfg.Seed).Child(0xb00)
	start := time.Now()
	invStart := detect.Invocations()

	corr, err := profile.BuildCorrectionAt(spec, int(maxFraction*float64(spec.Video.NumFrames())), root.Child(1))
	if err != nil {
		return nil, err
	}
	for ri, p := range resolutions {
		_, err := profile.SweepFractions(spec, profile.SweepOptions{
			Fractions:  fractions,
			Setting:    degrade.Setting{Resolution: p},
			Correction: corr,
		}, root.ChildN(2, uint64(ri)))
		if err != nil {
			return nil, err
		}
	}
	totalTime := time.Since(start)
	invocations := detect.Invocations() - invStart

	// Second pass over warm caches isolates the estimation stage: the
	// model outputs are cached, so this measures everything except
	// inference.
	estStart := time.Now()
	for ri, p := range resolutions {
		if _, err := profile.SweepFractions(spec, profile.SweepOptions{
			Fractions:  fractions,
			Setting:    degrade.Setting{Resolution: p},
			Correction: corr,
		}, root.ChildN(2, uint64(ri))); err != nil {
			return nil, err
		}
	}
	estimationTime := time.Since(estStart)
	modelTime := totalTime - estimationTime
	if modelTime < 0 {
		modelTime = 0
	}

	report := &Report{
		ID:    "timing",
		Title: "Profile-generation time breakdown (Section 5.3.1)",
	}
	table := &Table{
		Title:  fmt.Sprintf("Timing — %s, %d resolutions, fractions up to %.2f", w, len(resolutions), maxFraction),
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"model invocations", fmt.Sprintf("%d", invocations)},
			{"expected (paper)", fmt.Sprintf("%d (= 10 x 4%% of 15210, plus the correction set)", 6084)},
			{"total profile time", totalTime.Round(time.Millisecond).String()},
			{"estimation-only time", estimationTime.Round(time.Millisecond).String()},
			{"model (inference) time", modelTime.Round(time.Millisecond).String()},
		},
	}
	report.Tables = append(report.Tables, table)
	if estimationTime*5 < modelTime {
		report.Notes = append(report.Notes,
			"Reproduced: model processing dominates profile generation; the estimation stage is negligible")
	} else {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"WARNING: estimation time %v not negligible against model time %v", estimationTime, modelTime))
	}
	return report, nil
}
