package experiments

import (
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func init() { register("figure6", Figure6) }

// correctionFraction returns the paper's determined correction-set sizes
// (Section 5.2.2): night-street 6% for AVG and 2% for MAX; UA-DETRAC 4%
// for AVG and 2% for MAX.
func correctionFraction(w Workload) float64 {
	if w.Agg.IsExtremum() {
		return 0.02
	}
	if w.Dataset == "night-street" {
		return 0.06
	}
	return 0.04
}

// figure6Row is one intervention point averaged over trials.
type figure6Row struct {
	Label       string
	TrueErr     float64
	Uncorrected float64
	Corrected   float64
	// UncorrectedUnsafe marks the paper's red circles: the uncorrected
	// bound fell below the true error.
	UncorrectedUnsafe bool
}

// evalSetting measures true error, uncorrected bound and corrected bound
// for one setting over cfg.Trials trials.
func evalSetting(spec *profile.Spec, setting degrade.Setting, corrFraction float64, cfg Config, streamLabel uint64) (figure6Row, error) {
	root := stats.NewStream(cfg.Seed).Child(streamLabel)
	n := spec.Video.NumFrames()
	m := int(float64(n)*corrFraction + 0.5)
	var row figure6Row
	unsafeTrials := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		s := root.Child(uint64(trial))
		uncorrected, err := spec.UncorrectedEstimate(setting, s.Child(1))
		if err != nil {
			return row, err
		}
		corr, err := profile.BuildCorrectionAt(spec, m, s.Child(2))
		if err != nil {
			return row, err
		}
		corrected, err := corr.Repaired(spec.Agg, uncorrected, spec.Params, setting.IsRandomOnly(spec.Model))
		if err != nil {
			return row, err
		}
		trueErr, err := spec.TrueErrorOf(uncorrected.Value)
		if err != nil {
			return row, err
		}
		row.TrueErr += trueErr
		row.Uncorrected += capBound(uncorrected.ErrBound)
		row.Corrected += capBound(corrected.ErrBound)
		if uncorrected.ErrBound < trueErr {
			unsafeTrials++
		}
	}
	t := float64(cfg.Trials)
	row.TrueErr /= t
	row.Uncorrected /= t
	row.Corrected /= t
	row.UncorrectedUnsafe = unsafeTrials*2 > cfg.Trials
	return row, nil
}

// Figure6 reproduces the paper's Figure 6: error bounds with and without
// the correction set against the true error, for AVG and MAX on both
// datasets, under each of the three intervention axes:
//
//	row 1: reduced frame sampling (random) — the correction set tightens
//	       bounds when it carries more information than the tiny sample;
//	row 2: reduced frame resolution at f = 0.5 — the uncorrected bound can
//	       fall below the true error (the red circles), the repaired one
//	       never does;
//	row 3: image removal at f = 0.5 (f = 0.1 for UA-DETRAC "person") —
//	       same phenomenon driven by the person/car correlation.
func Figure6(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "figure6",
		Title: "Error bounds with and without the correction set (Figure 6)",
	}
	workloads := []Workload{
		{Dataset: "night-street", Model: "mask-rcnn", Agg: estimate.AVG},
		{Dataset: "night-street", Model: "mask-rcnn", Agg: estimate.MAX},
		{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.AVG},
		{Dataset: "ua-detrac", Model: "yolov4", Agg: estimate.MAX},
	}
	if cfg.Quick {
		workloads = workloads[:1]
	}
	for wi, w := range workloads {
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		corrFrac := correctionFraction(w)

		axes := []struct {
			name     string
			settings []degrade.Setting
			labels   []string
		}{
			samplingAxis(w, cfg),
			resolutionAxis(spec, cfg),
			removalAxis(w, cfg),
		}
		for ai, axis := range axes {
			table := &Table{
				Title:  fmt.Sprintf("Figure 6 — %s — %s (correction %d%%)", w, axis.name, int(corrFrac*100)),
				Header: []string{axis.name, "true err", "bound w/o corr", "bound w/ corr", "w/o corr unsafe"},
			}
			for si, setting := range axis.settings {
				row, err := evalSetting(spec, setting, corrFrac, cfg, uint64(wi*100+ai*10+si))
				if err != nil {
					return nil, err
				}
				unsafe := ""
				if row.UncorrectedUnsafe {
					unsafe = "YES (red circle)"
				}
				table.Rows = append(table.Rows, []string{
					axis.labels[si], fmtF(row.TrueErr), fmtF(row.Uncorrected), fmtF(row.Corrected), unsafe,
				})
			}
			report.Tables = append(report.Tables, table)
		}
	}
	return report, nil
}

// samplingAxis: pure frame-sampling sweep (random intervention).
func samplingAxis(w Workload, cfg Config) (axis struct {
	name     string
	settings []degrade.Setting
	labels   []string
}) {
	axis.name = "sample fraction"
	fractions := []float64{0.005, 0.01, 0.02, 0.05, 0.1}
	if cfg.Quick {
		fractions = []float64{0.01, 0.05}
	}
	for _, f := range fractions {
		axis.settings = append(axis.settings, degrade.Setting{SampleFraction: f})
		axis.labels = append(axis.labels, fmt.Sprintf("%.4g", f))
	}
	return axis
}

// resolutionAxis: resolution sweep at f = 0.5.
func resolutionAxis(spec *profile.Spec, cfg Config) (axis struct {
	name     string
	settings []degrade.Setting
	labels   []string
}) {
	axis.name = "resolution"
	resolutions := spec.Model.Resolutions(10)
	if cfg.Quick {
		// 192 and 64 are valid for every built-in model (multiples of 64).
		resolutions = []int{spec.Model.NativeInput, 192, 64}
	}
	for _, p := range resolutions {
		axis.settings = append(axis.settings, degrade.Setting{SampleFraction: 0.5, Resolution: p})
		axis.labels = append(axis.labels, fmt.Sprintf("%dx%d", p, p))
	}
	return axis
}

// removalAxis: restricted-class sweep at f = 0.5 (f = 0.1 for UA-DETRAC
// "person", whose admissible pool is under half the corpus — paper
// Section 5.2.2).
func removalAxis(w Workload, cfg Config) (axis struct {
	name     string
	settings []degrade.Setting
	labels   []string
}) {
	axis.name = "restricted class"
	combos := []struct {
		label   string
		classes []scene.Class
	}{
		{"none", nil},
		{"face", []scene.Class{scene.Face}},
		{"person", []scene.Class{scene.Person}},
	}
	for _, combo := range combos {
		f := 0.5
		if len(combo.classes) == 1 && combo.classes[0] == scene.Person {
			// The person-admissible pool is small on dense corpora.
			f = 0.1
		}
		if cfg.Quick {
			f = f / 5
		}
		axis.settings = append(axis.settings, degrade.Setting{SampleFraction: f, Restricted: combo.classes})
		axis.labels = append(axis.labels, combo.label)
	}
	return axis
}
