package experiments

import (
	"fmt"

	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/stats"
)

func init() { register("figure3", Figure3) }

// Figure3 reproduces the paper's Figure 3: the *real* degradation-accuracy
// tradeoff curves of the AVG car-count query against frame resolution on
// night-street and UA-DETRAC, both detected with YOLOv4. No estimation is
// involved: the curve is the true relative error of the resolution-
// degraded answer against the native-resolution answer, which is why the
// two corpora produce visibly different curves (the paper's motivation for
// video-specific profiles).
func Figure3(cfg Config) (*Report, error) {
	report := &Report{
		ID:    "figure3",
		Title: "Real degradation-accuracy tradeoff curves (AVG cars vs resolution, YOLOv4)",
	}
	for _, datasetName := range []string{"night-street", "ua-detrac"} {
		w := Workload{Dataset: datasetName, Model: "yolov4", Agg: estimate.AVG}
		spec, err := w.Spec()
		if err != nil {
			return nil, err
		}
		resolutions := spec.Model.Resolutions(10)
		if cfg.Quick {
			resolutions = []int{spec.Model.NativeInput, 320, 96}
		}

		// The truth is the answer at native resolution over the same frame
		// set the sweep uses (in quick mode that is a fixed subset).
		truth := resolutionMean(spec, spec.Model.NativeInput, cfg)
		table := &Table{
			Title:  fmt.Sprintf("Figure 3 — %s", w),
			Header: []string{"resolution", "avg cars", "true relative error"},
		}
		for _, p := range resolutions {
			mean := resolutionMean(spec, p, cfg)
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%dx%d", p, p),
				fmtF(mean),
				fmtF(stats.RelativeError(mean, truth)),
			})
		}
		report.Tables = append(report.Tables, table)
	}
	return report, nil
}

// resolutionMean computes the degraded query answer at resolution p. In
// quick mode a fixed random subset of frames stands in for the full
// corpus; the subset is shared across resolutions so the curve shape is
// comparable.
func resolutionMean(spec *profile.Spec, p int, cfg Config) float64 {
	if !cfg.Quick {
		return stats.Mean(seriesFull(spec.Video, spec.Model, spec.Class, p))
	}
	n := spec.Video.NumFrames()
	sub := n / 10
	stream := stats.NewStream(cfg.Seed).Child(0xf13)
	frames := stream.SampleWithoutReplacement(n, sub)
	return stats.Mean(seriesAt(spec.Video, spec.Model, spec.Class, p, frames))
}
