// Package experiments reproduces every figure and headline claim of the
// paper's evaluation (Section 5). Each experiment is a pure function of a
// Config and returns a Report of text tables whose rows correspond to the
// points of the paper's plots; cmd/smokebench renders them, EXPERIMENTS.md
// records paper-versus-measured, and the root bench_test.go wraps each one
// in a testing.B benchmark.
package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/outputs"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// seriesAt reads the per-frame counts for explicit frames over a
// Background context. The only error outputs.At can return is context
// cancellation, which a Background root cannot produce — so instead of
// threading an impossible error through every figure driver (or worse,
// silently plotting a nil series as zeros), a failure stops the run.
func seriesAt(v *scene.Video, m *detect.Model, class scene.Class, p int, frames []int) []float64 {
	series, err := outputs.At(context.Background(), v, m, class, p, frames)
	if err != nil {
		panic(fmt.Sprintf("experiments: outputs.At over a Background context failed: %v", err))
	}
	return series
}

// seriesFull is seriesAt over the whole corpus.
func seriesFull(v *scene.Video, m *detect.Model, class scene.Class, p int) []float64 {
	series, err := outputs.Full(context.Background(), v, m, class, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: outputs.Full over a Background context failed: %v", err))
	}
	return series
}

// Config scales an experiment run.
type Config struct {
	// Trials per measurement point; the paper uses 100.
	Trials int
	// Seed roots all randomness.
	Seed uint64
	// Quick trims sweeps (fewer points, smaller fractions) so tests can
	// exercise every experiment in seconds. Figures for EXPERIMENTS.md are
	// produced with Quick off.
	Quick bool
	// Parallelism bounds the worker goroutines used for per-point trial
	// loops: 1 is sequential, 0 or negative means one worker per CPU. Each
	// trial derives its randomness from a stats.Stream child keyed by the
	// trial index and results are reduced in trial order, so reports are
	// bit-for-bit identical at any worker count.
	Parallelism int
}

// DefaultConfig mirrors the paper: 100 trials.
func DefaultConfig() Config { return Config{Trials: 100, Seed: 20220612} }

// QuickConfig is the test-sized configuration.
func QuickConfig() Config { return Config{Trials: 8, Seed: 20220612, Quick: true} }

func (c Config) validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("experiments: trials must be positive")
	}
	return nil
}

// Table is a rendered experiment artifact: one per figure panel.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as RFC-4180 CSV with the title as a comment
// line, for downstream plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	// Notes carries free-form findings (e.g. the headline percentages).
	Notes []string
}

// RenderCSV writes every table of the report as CSV blocks separated by
// blank lines, with notes as leading comment lines.
func (r *Report) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, note := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", note); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := t.RenderCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the whole report.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, note := range r.Notes {
		if _, err := fmt.Fprintf(w, "* %s\n", note); err != nil {
			return err
		}
	}
	if len(r.Notes) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Runner executes one experiment.
type Runner func(Config) (*Report, error)

// registry maps experiment IDs to runners. Registration happens in init
// functions whose order follows source-file names, so presentation order
// is pinned explicitly in IDs instead.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// presentationOrder pins the order experiments appear in reports: the
// calibration ground first, then the paper's figures, the timing analysis,
// the headline claims, and this reproduction's ablations.
var presentationOrder = []string{
	"calibration",
	"figure3", "figure4", "figure5", "figure6", "figure7", "figure8", "figure9", "figure10",
	"ladder", "adversarial",
	"timing", "claims", "ablations", "modelaccuracy", "bandwidth",
}

// IDs lists the registered experiment IDs in presentation order; any
// experiment registered but not pinned is appended alphabetically.
func IDs() []string {
	out := make([]string, 0, len(registry))
	seen := map[string]bool{}
	for _, id := range presentationOrder {
		if _, ok := registry[id]; ok {
			out = append(out, id)
			seen[id] = true
		}
	}
	var rest []string
	for id := range registry {
		if !seen[id] {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runner, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return runner(cfg)
}

// Workload identifies one (dataset, model, aggregate) combination from the
// paper's Section 5.1.
type Workload struct {
	Dataset string
	Model   string
	Agg     estimate.Agg
}

// String renders the workload for table titles.
func (w Workload) String() string {
	return fmt.Sprintf("%s / %s / %s", w.Dataset, w.Model, w.Agg)
}

// Spec resolves the workload. COUNT uses the paper's predicate: frames
// that contain cars.
func (w Workload) Spec() (*profile.Spec, error) {
	v, err := dataset.Load(w.Dataset)
	if err != nil {
		return nil, err
	}
	model, err := detect.ModelByName(w.Model)
	if err != nil {
		return nil, err
	}
	return &profile.Spec{
		Video:  v,
		Model:  model,
		Class:  scene.Car,
		Agg:    w.Agg,
		Params: estimate.DefaultParams(),
	}, nil
}

// paperWorkloads returns the Figure 4 grid: two datasets x four aggregate
// types, with the paper's model assignment.
func paperWorkloads() []Workload {
	var out []Workload
	for _, agg := range []estimate.Agg{estimate.AVG, estimate.SUM, estimate.COUNT, estimate.MAX} {
		out = append(out, Workload{Dataset: "night-street", Model: "mask-rcnn", Agg: agg})
	}
	for _, agg := range []estimate.Agg{estimate.AVG, estimate.SUM, estimate.COUNT, estimate.MAX} {
		out = append(out, Workload{Dataset: "ua-detrac", Model: "yolov4", Agg: agg})
	}
	return out
}

// sweepEnd returns the largest sample fraction of the Figure 4 sweep for a
// workload — the paper ends each curve where it has flattened.
func sweepEnd(w Workload) float64 {
	night := w.Dataset == "night-street"
	switch w.Agg {
	case estimate.AVG, estimate.SUM:
		if night {
			return 0.1
		}
		return 0.06
	case estimate.MAX:
		if night {
			return 0.05
		}
		return 0.02
	case estimate.COUNT:
		if night {
			return 0.0015
		}
		return 0.003
	default:
		return 0.1
	}
}

// sweepFractions returns evenly spaced fractions from end/points to end.
func sweepFractions(end float64, points int) []float64 {
	out := make([]float64, points)
	for i := range out {
		out[i] = end * float64(i+1) / float64(points)
	}
	return out
}

// samplePrefix draws a nested without-replacement sample: a prefix of a
// permutation, matching the profile package's reuse strategy.
func samplePrefix(population []float64, n int, stream *stats.Stream) []float64 {
	idx := stream.SampleWithoutReplacement(len(population), n)
	out := make([]float64, n)
	for i, j := range idx {
		out[i] = population[j]
	}
	return out
}

// fmtF formats a float for table cells.
func fmtF(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 1):
		return "inf"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// fmtPct formats a percentage.
func fmtPct(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v)
}

// capBound truncates unbounded baseline values for averaging across
// trials; the cap is far above every plotted axis in the paper.
func capBound(v float64) float64 {
	if math.IsInf(v, 1) || v > 10 {
		return 10
	}
	return v
}
