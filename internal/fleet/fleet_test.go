package fleet

import (
	"math"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// testFleet builds a two-camera fleet: the fast corpus and the A/B pair
// sequences, each under a random-only setting.
func testFleet(t *testing.T, fractions ...float64) *Fleet {
	t.Helper()
	if len(fractions) != 2 {
		t.Fatal("need two fractions")
	}
	f, err := New(
		Camera{
			Name:    "intersection",
			Video:   dataset.MustLoad("mvi-40771"),
			Model:   detect.YOLOv4Sim(),
			Setting: degrade.Setting{SampleFraction: fractions[0]},
		},
		Camera{
			Name:    "intersection-later",
			Video:   dataset.MustLoad("mvi-40775"),
			Model:   detect.YOLOv4Sim(),
			Setting: degrade.Setting{SampleFraction: fractions[1]},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty fleet accepted")
	}
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	ok := Camera{Name: "a", Video: v, Model: m, Setting: degrade.Setting{SampleFraction: 0.1}}
	if _, err := New(ok, Camera{Name: "a", Video: v, Model: m, Setting: ok.Setting}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New(Camera{Video: v, Model: m, Setting: ok.Setting}); err == nil {
		t.Fatal("unnamed camera accepted")
	}
	if _, err := New(Camera{Name: "b", Model: m, Setting: ok.Setting}); err == nil {
		t.Fatal("camera without video accepted")
	}
	if _, err := New(Camera{Name: "c", Video: v, Model: m, Setting: degrade.Setting{SampleFraction: 2}}); err == nil {
		t.Fatal("invalid setting accepted")
	}
	// Non-random setting without correction must be rejected at assembly.
	if _, err := New(Camera{Name: "d", Video: v, Model: m, Setting: degrade.Setting{SampleFraction: 0.1, Resolution: 160}}); err == nil {
		t.Fatal("non-random camera without correction accepted")
	}
}

func TestFleetSizeAndFrames(t *testing.T) {
	f := testFleet(t, 0.2, 0.2)
	if f.Size() != 2 {
		t.Fatalf("Size = %d", f.Size())
	}
	want := dataset.MustLoad("mvi-40771").NumFrames() + dataset.MustLoad("mvi-40775").NumFrames()
	if f.TotalFrames() != want {
		t.Fatalf("TotalFrames = %d, want %d", f.TotalFrames(), want)
	}
}

func TestFleetAvgCoversTruth(t *testing.T) {
	f := testFleet(t, 0.3, 0.3)
	p := estimate.DefaultParams()
	truth, err := f.TrueAnswer(estimate.AVG, scene.Car, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Fatalf("truth %v", truth)
	}
	root := stats.NewStream(77)
	covered := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		res, err := f.Query(estimate.AVG, scene.Car, nil, p, root.Child(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cameras) != 2 {
			t.Fatalf("camera results %d", len(res.Cameras))
		}
		if math.Abs(res.Cameras[0].Weight+res.Cameras[1].Weight-1) > 1e-9 {
			t.Fatal("weights do not sum to 1")
		}
		trueErr := math.Abs(res.Estimate.Value-truth) / truth
		if trueErr <= res.Estimate.ErrBound {
			covered++
		}
	}
	if covered < trials*9/10 {
		t.Fatalf("fleet coverage %d/%d", covered, trials)
	}
}

func TestFleetSumScaling(t *testing.T) {
	f := testFleet(t, 0.3, 0.3)
	p := estimate.DefaultParams()
	root := stats.NewStream(79)
	avg, err := f.Query(estimate.AVG, scene.Car, nil, p, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := f.Query(estimate.SUM, scene.Car, nil, p, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	want := avg.Estimate.Value * float64(f.TotalFrames())
	if math.Abs(sum.Estimate.Value-want) > 1e-6*want {
		t.Fatalf("SUM %v, want AVG*N %v", sum.Estimate.Value, want)
	}
	if sum.Estimate.ErrBound != avg.Estimate.ErrBound {
		t.Fatal("SUM bound should equal AVG bound")
	}
}

func TestFleetCountCoversTruth(t *testing.T) {
	f := testFleet(t, 0.2, 0.2)
	p := estimate.DefaultParams()
	truth, err := f.TrueAnswer(estimate.COUNT, scene.Car, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Query(estimate.COUNT, scene.Car, nil, p, stats.NewStream(83))
	if err != nil {
		t.Fatal(err)
	}
	trueErr := math.Abs(res.Estimate.Value-truth) / truth
	if trueErr > res.Estimate.ErrBound {
		t.Fatalf("COUNT bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}

func TestFleetRejectsExtremumAndVar(t *testing.T) {
	f := testFleet(t, 0.2, 0.2)
	p := estimate.DefaultParams()
	for _, agg := range []estimate.Agg{estimate.MAX, estimate.MIN, estimate.VAR} {
		if _, err := f.Query(agg, scene.Car, nil, p, stats.NewStream(1)); err == nil {
			t.Fatalf("%v accepted", agg)
		}
		if _, err := f.TrueAnswer(agg, scene.Car, nil, p); err == nil {
			t.Fatalf("TrueAnswer %v accepted", agg)
		}
	}
}

func TestFleetMixedSettingsWithRepair(t *testing.T) {
	// One camera degrades resolution (needs correction), the other only
	// samples; the combined bound must still cover the truth.
	vA := dataset.MustLoad("mvi-40771")
	vB := dataset.MustLoad("mvi-40775")
	m := detect.YOLOv4Sim()
	p := estimate.DefaultParams()
	specA := &profile.Spec{Video: vA, Model: m, Class: scene.Car, Agg: estimate.AVG, Params: p}
	corr, err := profile.BuildCorrectionAt(specA, 400, stats.NewStream(89))
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(
		Camera{Name: "a", Video: vA, Model: m,
			Setting: degrade.Setting{SampleFraction: 0.3, Resolution: 320}, Correction: corr},
		Camera{Name: "b", Video: vB, Model: m,
			Setting: degrade.Setting{SampleFraction: 0.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := f.TrueAnswer(estimate.AVG, scene.Car, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	root := stats.NewStream(91)
	covered := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		res, err := f.Query(estimate.AVG, scene.Car, nil, p, root.Child(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		trueErr := math.Abs(res.Estimate.Value-truth) / truth
		if trueErr <= res.Estimate.ErrBound {
			covered++
		}
	}
	if covered < trials*8/10 {
		t.Fatalf("mixed-setting fleet coverage %d/%d", covered, trials)
	}
}

func TestFleetDegenerateCameraFallsBack(t *testing.T) {
	// A camera sampled so thinly that its interval collapses must push the
	// fleet to the conservative (0, err=1) answer rather than a bogus one.
	f := testFleet(t, 0.002, 0.3)
	p := estimate.DefaultParams()
	res, err := f.Query(estimate.AVG, scene.Car, nil, p, stats.NewStream(93))
	if err != nil {
		t.Fatal(err)
	}
	for _, cam := range res.Cameras {
		if cam.Estimate.ErrBound >= 1 {
			if res.Estimate.ErrBound != 1 || res.Estimate.Value != 0 {
				t.Fatalf("degenerate camera not propagated: %+v", res.Estimate)
			}
			return
		}
	}
	t.Skip("no camera degenerated at this seed; covered elsewhere")
}
