// Package fleet extends Smokescreen from one camera to a fleet. The
// paper's system model (Section 1) has "a set of configurable networked
// cameras" feeding one query processor; this package answers aggregate
// queries over the union of several corpora, each degraded under its own
// intervention setting, with a combined error bound that stays sound.
//
// The combination is stratified estimation in the paper's interval style:
// camera i contributes a confidence interval [LB_i, UB_i] for its own mean
// at risk delta/K (union bound over the K cameras), the fleet mean lies in
// [sum w_i*LB_i, sum w_i*UB_i] with w_i = N_i/N, and the answer/bound pair
// follows the harmonic form of Theorem 3.1:
//
//	Y = 2*UB*LB/(UB+LB),  err_b = (UB-LB)/(UB+LB).
//
// AVG, SUM and COUNT combine this way; MAX/MIN rank errors do not compose
// across corpora and are rejected.
package fleet

import (
	"context"
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// Camera is one member of the fleet: a corpus, the model watching it, and
// the administrator-chosen intervention setting.
type Camera struct {
	Name    string
	Video   *scene.Video
	Model   *detect.Model
	Setting degrade.Setting
	// Correction repairs the camera's bound when its setting applies
	// non-random interventions; nil is allowed for random-only settings.
	Correction *estimate.Correction
}

// Fleet is a set of cameras answering queries together.
type Fleet struct {
	cameras []Camera
}

// New validates and assembles a fleet.
func New(cameras ...Camera) (*Fleet, error) {
	if len(cameras) == 0 {
		return nil, fmt.Errorf("fleet: at least one camera required")
	}
	seen := map[string]bool{}
	for i := range cameras {
		c := &cameras[i]
		if c.Name == "" {
			return nil, fmt.Errorf("fleet: camera %d has no name", i)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("fleet: duplicate camera name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Video == nil || c.Model == nil {
			return nil, fmt.Errorf("fleet: camera %q missing video or model", c.Name)
		}
		if err := c.Setting.Validate(c.Model); err != nil {
			return nil, fmt.Errorf("fleet: camera %q: %w", c.Name, err)
		}
		if !c.Setting.IsRandomOnly(c.Model) && c.Correction == nil {
			return nil, fmt.Errorf("fleet: camera %q applies non-random interventions but has no correction set", c.Name)
		}
	}
	return &Fleet{cameras: cameras}, nil
}

// Size returns the number of cameras.
func (f *Fleet) Size() int { return len(f.cameras) }

// TotalFrames returns N, the union population size.
func (f *Fleet) TotalFrames() int {
	total := 0
	for i := range f.cameras {
		total += f.cameras[i].Video.NumFrames()
	}
	return total
}

// CameraResult is one camera's contribution to a fleet answer.
type CameraResult struct {
	Name     string
	Estimate estimate.Estimate
	Weight   float64 // N_i / N
}

// Result is a fleet-wide query answer.
type Result struct {
	Estimate estimate.Estimate
	Cameras  []CameraResult
}

// Query answers the aggregate over the union of all cameras' corpora,
// each degraded under its own setting, at overall risk p.Delta. Only
// mean-type aggregates (AVG, SUM, COUNT) are supported; predicate
// transforms COUNT outputs exactly as in profile.Spec (nil means
// "contains at least one object").
func (f *Fleet) Query(agg estimate.Agg, class scene.Class, predicate func(float64) float64, p estimate.Params, stream *stats.Stream) (*Result, error) {
	return f.QueryCtx(context.Background(), agg, class, predicate, p, stream)
}

// QueryCtx is Query under a context: cancellation stops the per-camera
// estimation pipeline (including its detector work) and returns ctx's
// error with no partial result.
func (f *Fleet) QueryCtx(ctx context.Context, agg estimate.Agg, class scene.Class, predicate func(float64) float64, p estimate.Params, stream *stats.Stream) (*Result, error) {
	if agg.IsExtremum() || agg == estimate.VAR {
		return nil, fmt.Errorf("fleet: %v does not compose across cameras (rank and variance errors are corpus-local)", agg)
	}
	k := len(f.cameras)
	// Union bound: each camera runs at delta/K so the joint guarantee
	// holds at 1-delta.
	per := p
	per.Delta = p.Delta / float64(k)

	totalFrames := f.TotalFrames()
	var (
		results  []CameraResult
		ubSum    float64
		lbSum    float64
		anyLoose bool
	)
	// COUNT keeps its per-camera aggregate so the known indicator range
	// applies (constant all-match samples stay bounded); its values are
	// rescaled to the mean level for combination.
	perCameraAgg := estimate.AVG
	if agg == estimate.COUNT {
		perCameraAgg = estimate.COUNT
	}
	for i := range f.cameras {
		c := &f.cameras[i]
		spec := &profile.Spec{
			Video:     c.Video,
			Model:     c.Model,
			Class:     class,
			Agg:       perCameraAgg,
			Params:    per,
			Predicate: predicateFor(agg, predicate),
		}
		if !c.Model.CanDetect(class) {
			return nil, fmt.Errorf("fleet: camera %q model %s cannot detect %v", c.Name, c.Model.Name, class)
		}
		est, err := spec.EstimateSettingCtx(ctx, c.Setting, c.Correction, stream.Child(uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("fleet: camera %q: %w", c.Name, err)
		}
		weight := float64(c.Video.NumFrames()) / float64(totalFrames)
		results = append(results, CameraResult{Name: c.Name, Estimate: est, Weight: weight})

		// Reconstruct the camera's mean interval from the harmonic pair:
		// |Y| = (1+err)*LB = (1-err)*UB.
		if est.ErrBound >= 1 {
			anyLoose = true
			continue
		}
		meanValue := est.Value
		if perCameraAgg == estimate.COUNT {
			meanValue /= float64(c.Video.NumFrames())
		}
		lb := meanValue / (1 + est.ErrBound)
		ub := meanValue / (1 - est.ErrBound)
		lbSum += weight * lb
		ubSum += weight * ub
	}
	out := &Result{Cameras: results}
	n := 0
	for _, r := range results {
		n += r.Estimate.Sample
	}
	out.Estimate = estimate.Estimate{N: totalFrames, Sample: n}
	if anyLoose || ubSum <= 0 {
		// A camera with a degenerate interval leaves the fleet mean
		// unbounded below: report the conservative pair.
		out.Estimate.Value = 0
		out.Estimate.ErrBound = 1
	} else {
		out.Estimate.Value = 2 * ubSum * lbSum / (ubSum + lbSum)
		out.Estimate.ErrBound = (ubSum - lbSum) / (ubSum + lbSum)
	}
	if agg == estimate.SUM || agg == estimate.COUNT {
		out.Estimate.Value *= float64(totalFrames)
	}
	return out, nil
}

// predicateFor adapts the COUNT semantics: fleet queries run each camera
// at the AVG level over (possibly predicate-transformed) outputs.
func predicateFor(agg estimate.Agg, predicate func(float64) float64) func(float64) float64 {
	if agg != estimate.COUNT {
		return predicate
	}
	if predicate != nil {
		return predicate
	}
	return func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	}
}

// TrueAnswer computes the exact fleet aggregate for tests and demos.
func (f *Fleet) TrueAnswer(agg estimate.Agg, class scene.Class, predicate func(float64) float64, p estimate.Params) (float64, error) {
	if agg.IsExtremum() || agg == estimate.VAR {
		return 0, fmt.Errorf("fleet: %v does not compose across cameras", agg)
	}
	var population []float64
	for i := range f.cameras {
		c := &f.cameras[i]
		spec := &profile.Spec{
			Video:     c.Video,
			Model:     c.Model,
			Class:     class,
			Agg:       estimate.AVG,
			Params:    p,
			Predicate: predicateFor(agg, predicate),
		}
		population = append(population, spec.TruePopulation()...)
	}
	return estimate.TrueAnswer(agg, population, p)
}
