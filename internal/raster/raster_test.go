package raster

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}

func TestAtSetBounds(t *testing.T) {
	m := New(4, 3)
	m.Set(1, 2, 0.5)
	if got := m.At(1, 2); got != 0.5 {
		t.Fatalf("At = %v", got)
	}
	if got := m.At(-1, 0); got != 0 {
		t.Fatalf("out-of-bounds At = %v", got)
	}
	if got := m.At(4, 0); got != 0 {
		t.Fatalf("out-of-bounds At = %v", got)
	}
	m.Set(99, 99, 1) // must not panic
	m.Set(0, 0, 2)
	if got := m.At(0, 0); got != 1 {
		t.Fatalf("Set did not clamp: %v", got)
	}
	m.Set(0, 0, -1)
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("Set did not clamp negative: %v", got)
	}
}

func TestAddClamps(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 0.9)
	m.Add(0, 0, 0.5)
	if got := m.At(0, 0); got != 1 {
		t.Fatalf("Add did not clamp: %v", got)
	}
	m.Add(5, 5, 1) // out of bounds, must not panic
}

func TestCloneIndependent(t *testing.T) {
	m := New(3, 3)
	m.Fill(0.25)
	c := m.Clone()
	c.Set(1, 1, 0.9)
	if m.At(1, 1) != 0.25 {
		t.Fatal("Clone shares pixel storage")
	}
}

func TestFillAndMean(t *testing.T) {
	m := New(10, 10)
	m.Fill(0.4)
	if got := m.Mean(); math.Abs(got-0.4) > 1e-6 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestRectOps(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	inter := a.Intersect(b)
	if inter.W() != 5 || inter.H() != 5 || inter.Area() != 25 {
		t.Fatalf("Intersect = %+v", inter)
	}
	u := a.Union(b)
	if u.MinX != 0 || u.MaxX != 15 || u.MinY != 0 || u.MaxY != 15 {
		t.Fatalf("Union = %+v", u)
	}
	if !a.Contains(9, 9) || a.Contains(10, 10) {
		t.Fatal("Contains semantics wrong")
	}
	if got := a.IoU(b); math.Abs(got-25.0/175.0) > 1e-12 {
		t.Fatalf("IoU = %v", got)
	}
	if got := a.IoU(RectWH(20, 20, 5, 5)); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	if got := a.IoU(a); got != 1 {
		t.Fatalf("self IoU = %v", got)
	}
}

func TestRectEmptyBehaviour(t *testing.T) {
	empty := Rect{}
	if !empty.Empty() || empty.Area() != 0 {
		t.Fatal("zero Rect should be empty")
	}
	a := RectWH(1, 1, 3, 3)
	if got := a.Union(empty); got != a {
		t.Fatalf("union with empty = %+v", got)
	}
	if got := empty.Union(a); got != a {
		t.Fatalf("empty union = %+v", got)
	}
	disjoint := a.Intersect(RectWH(10, 10, 2, 2))
	if !disjoint.Empty() {
		t.Fatalf("disjoint intersect not empty: %+v", disjoint)
	}
}

func TestRectScaleNeverVanishes(t *testing.T) {
	property := func(x, y int8, wRaw, hRaw uint8, sRaw uint8) bool {
		w := int(wRaw)%50 + 1
		h := int(hRaw)%50 + 1
		s := (float64(sRaw) + 1) / 256 // scale in (0, 1]
		r := RectWH(int(x), int(y), w, h)
		scaled := r.Scale(s)
		return !scaled.Empty()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRectCenter(t *testing.T) {
	cx, cy := RectWH(0, 0, 4, 2).Center()
	if cx != 2 || cy != 1 {
		t.Fatalf("Center = (%v, %v)", cx, cy)
	}
}

func TestFillRectRespectsBounds(t *testing.T) {
	m := New(4, 4)
	m.FillRect(RectWH(-2, -2, 10, 10), 0.7)
	for i, v := range m.Pix {
		if v != 0.7 {
			t.Fatalf("pixel %d = %v after clipped fill", i, v)
		}
	}
}

func TestBlendRect(t *testing.T) {
	m := New(2, 2)
	m.Fill(0.2)
	m.BlendRect(RectWH(0, 0, 2, 2), 1.0, 0.5)
	if got := m.At(0, 0); math.Abs(float64(got)-0.6) > 1e-6 {
		t.Fatalf("blend = %v, want 0.6", got)
	}
}

func TestFillEllipseCoverage(t *testing.T) {
	m := New(40, 40)
	m.FillEllipse(RectWH(10, 10, 20, 20), 1)
	// Center must be painted, corners of the bounding box must not.
	if m.At(20, 20) != 1 {
		t.Fatal("ellipse center not painted")
	}
	if m.At(10, 10) != 0 || m.At(29, 29) != 0 {
		t.Fatal("ellipse painted its bounding-box corners")
	}
	// Painted area should approximate pi*r^2.
	var painted float64
	for _, v := range m.Pix {
		painted += float64(v)
	}
	want := math.Pi * 10 * 10
	if math.Abs(painted-want)/want > 0.12 {
		t.Fatalf("ellipse area = %v, want ~%v", painted, want)
	}
}

func TestGradientV(t *testing.T) {
	m := New(3, 10)
	m.GradientV(0, 1)
	if m.At(0, 0) >= m.At(0, 9) {
		t.Fatal("gradient not increasing downward")
	}
	prev := float32(-1)
	for y := 0; y < 10; y++ {
		v := m.At(1, y)
		if v < prev {
			t.Fatalf("gradient not monotone at y=%d", y)
		}
		prev = v
	}
}

func TestTextureDeterministic(t *testing.T) {
	a := New(16, 16)
	a.Fill(0.5)
	a.Texture(123, 0.1)
	b := New(16, 16)
	b.Fill(0.5)
	b.Texture(123, 0.1)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("texture not deterministic")
		}
	}
	c := New(16, 16)
	c.Fill(0.5)
	c.Texture(124, 0.1)
	same := 0
	for i := range a.Pix {
		if a.Pix[i] == c.Pix[i] {
			same++
		}
	}
	if same == len(a.Pix) {
		t.Fatal("different seeds produced identical texture")
	}
}

func TestAddNoiseStatistics(t *testing.T) {
	m := New(200, 200)
	m.Fill(0.5)
	m.AddNoise(7, 0.05)
	var sum, sumSq float64
	for _, v := range m.Pix {
		d := float64(v) - 0.5
		sum += d
		sumSq += d * d
	}
	n := float64(len(m.Pix))
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.005 {
		t.Fatalf("noise mean = %v", mean)
	}
	if math.Abs(sd-0.05)/0.05 > 0.15 {
		t.Fatalf("noise sd = %v, want ~0.05", sd)
	}
}

func TestAddNoiseZeroSigmaNoop(t *testing.T) {
	m := New(8, 8)
	m.Fill(0.3)
	m.AddNoise(1, 0)
	for _, v := range m.Pix {
		if v != 0.3 {
			t.Fatal("zero-sigma noise modified pixels")
		}
	}
}

func TestDownsampleConservesMean(t *testing.T) {
	// Area averaging preserves total luminance (up to boundary rounding).
	m := New(64, 64)
	m.GradientV(0.1, 0.9)
	m.Texture(5, 0.2)
	for _, size := range []int{32, 16, 48, 7} {
		d := Downsample(m, size, size)
		if math.Abs(d.Mean()-m.Mean()) > 0.02 {
			t.Fatalf("mean not conserved at %d: %v vs %v", size, d.Mean(), m.Mean())
		}
	}
}

func TestDownsampleIdentity(t *testing.T) {
	m := New(10, 10)
	m.Texture(1, 0.5)
	d := Downsample(m, 10, 10)
	for i := range m.Pix {
		if d.Pix[i] != m.Pix[i] {
			t.Fatal("identity downsample changed pixels")
		}
	}
	d.Set(0, 0, 1)
	if m.At(0, 0) == 1 {
		t.Fatal("identity downsample aliased storage")
	}
}

func TestDownsampleReducesSmallObjectContrast(t *testing.T) {
	// A 4x4 bright object on dark background: at 1/8 scale its peak
	// intensity must drop because the box filter averages it with
	// background — the physical mechanism behind resolution degradation.
	m := New(64, 64)
	m.Fill(0.1)
	m.FillRect(RectWH(30, 30, 4, 4), 0.9)
	d := Downsample(m, 8, 8)
	var peak float32
	for _, v := range d.Pix {
		if v > peak {
			peak = v
		}
	}
	if peak >= 0.5 {
		t.Fatalf("small object survived downsampling with peak %v", peak)
	}
	if peak <= 0.1 {
		t.Fatalf("small object vanished entirely: peak %v", peak)
	}
}

func TestDownsamplePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Downsample to zero did not panic")
		}
	}()
	Downsample(New(4, 4), 0, 4)
}

func TestUpsampleBilinear(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 0)
	m.Set(1, 0, 1)
	m.Set(0, 1, 0)
	m.Set(1, 1, 1)
	u := Downsample(m, 4, 4) // upsampling path
	if u.W != 4 || u.H != 4 {
		t.Fatalf("upsample size = %dx%d", u.W, u.H)
	}
	if u.At(0, 0) >= u.At(3, 0) {
		t.Fatal("bilinear upsample lost horizontal ramp")
	}
}

func TestIntegralSumRect(t *testing.T) {
	m := New(5, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x++ {
			m.Set(x, y, float32(x+y)/10)
		}
	}
	integral := Integral(m)
	// Compare against direct summation for a few rectangles.
	rects := []Rect{RectWH(0, 0, 5, 4), RectWH(1, 1, 3, 2), RectWH(4, 3, 1, 1), RectWH(2, 0, 1, 4)}
	for _, r := range rects {
		var want float64
		for y := r.MinY; y < r.MaxY; y++ {
			for x := r.MinX; x < r.MaxX; x++ {
				want += float64(m.At(x, y))
			}
		}
		got := integral.SumRect(r.MinX, r.MinY, r.MaxX, r.MaxY)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("SumRect(%+v) = %v, want %v", r, got, want)
		}
	}
}

func TestBoxBlurFlatInvariant(t *testing.T) {
	m := New(16, 16)
	m.Fill(0.6)
	b := BoxBlur(m, 2)
	for i, v := range b.Pix {
		if math.Abs(float64(v)-0.6) > 1e-6 {
			t.Fatalf("blur of flat image changed pixel %d to %v", i, v)
		}
	}
}

func TestBoxBlurSmooths(t *testing.T) {
	m := New(16, 16)
	m.Set(8, 8, 1)
	b := BoxBlur(m, 1)
	if got := b.At(8, 8); math.Abs(float64(got)-1.0/9) > 1e-6 {
		t.Fatalf("blurred impulse = %v, want 1/9", got)
	}
	if got := b.At(7, 7); math.Abs(float64(got)-1.0/9) > 1e-6 {
		t.Fatalf("blurred neighbour = %v, want 1/9", got)
	}
	if got := b.At(6, 8); got != 0 {
		t.Fatalf("pixel outside kernel = %v", got)
	}
}

func TestBoxBlurZeroRadiusClone(t *testing.T) {
	m := New(4, 4)
	m.Texture(9, 0.3)
	b := BoxBlur(m, 0)
	for i := range m.Pix {
		if b.Pix[i] != m.Pix[i] {
			t.Fatal("zero-radius blur changed pixels")
		}
	}
	b.Set(0, 0, 1)
	if m.At(0, 0) == 1 {
		t.Fatal("zero-radius blur aliased storage")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	m := New(32, 24)
	m.GradientV(0.1, 0.9)
	m.Texture(5, 0.2)
	var buf bytes.Buffer
	if err := EncodePNG(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 32 || back.H != 24 {
		t.Fatalf("decoded size %dx%d", back.W, back.H)
	}
	for i := range m.Pix {
		if math.Abs(float64(m.Pix[i]-back.Pix[i])) > 1.0/255+1e-6 {
			t.Fatalf("pixel %d drifted beyond quantisation: %v vs %v", i, m.Pix[i], back.Pix[i])
		}
	}
}

func TestDecodePNGRejectsGarbage(t *testing.T) {
	if _, err := DecodePNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDrawBox(t *testing.T) {
	m := New(10, 10)
	m.DrawBox(RectWH(2, 2, 5, 4), 1)
	if m.At(2, 2) != 1 || m.At(6, 2) != 1 || m.At(2, 5) != 1 || m.At(6, 5) != 1 {
		t.Fatal("box corners not stroked")
	}
	if m.At(4, 3) != 0 {
		t.Fatal("box interior filled")
	}
	// Boxes crossing the image edge must not panic.
	m.DrawBox(RectWH(-5, -5, 30, 30), 1)
}
