package raster

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// EncodePNG writes the grayscale image as an 8-bit PNG. It exists for
// human inspection of rendered scenes and degraded frames (cmd/videogen
// -png); the analytical pipeline never goes through PNG.
func EncodePNG(w io.Writer, m *Image) error {
	img := image.NewGray(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		row := y * m.W
		for x := 0; x < m.W; x++ {
			v := m.Pix[row+x]
			img.SetGray(x, y, color.Gray{Y: uint8(clamp01(v)*255 + 0.5)})
		}
	}
	return png.Encode(w, img)
}

// DecodePNG reads an 8-bit grayscale PNG back into an Image (color inputs
// are converted via the standard luma weights).
func DecodePNG(r io.Reader) (*Image, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("raster: decoding png: %w", err)
	}
	bounds := img.Bounds()
	out := New(bounds.Dx(), bounds.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			g := color.GrayModel.Convert(img.At(bounds.Min.X+x, bounds.Min.Y+y)).(color.Gray)
			out.Pix[y*out.W+x] = float32(g.Y) / 255
		}
	}
	return out, nil
}

// DrawBox strokes a one-pixel rectangle outline with intensity v — used to
// overlay detections on exported previews.
func (m *Image) DrawBox(r Rect, v float32) {
	for x := r.MinX; x < r.MaxX; x++ {
		m.Set(x, r.MinY, v)
		m.Set(x, r.MaxY-1, v)
	}
	for y := r.MinY; y < r.MaxY; y++ {
		m.Set(r.MinX, y, v)
		m.Set(r.MaxX-1, y, v)
	}
}
