package raster

import (
	"math"
	"math/rand"
	"testing"
)

func randomImage(rng *rand.Rand, w, h int) *Image {
	img := New(w, h)
	for i := range img.Pix {
		img.Pix[i] = rng.Float32()
	}
	return img
}

func maxAbsDiff(a, b *Image) float64 {
	var max float64
	for i := range a.Pix {
		d := math.Abs(float64(a.Pix[i]) - float64(b.Pix[i]))
		if d > max {
			max = d
		}
	}
	return max
}

func checkFinite(t *testing.T, img *Image, ctx string) {
	t.Helper()
	for i, v := range img.Pix {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("%s: non-finite pixel %v at %d", ctx, v, i)
		}
	}
}

// TestDownsampleMatchesNaive property-tests the prefix-sum downsampler
// against the retained boxAverage oracle over random sizes, including
// non-integer scale factors and extreme aspect ratios.
func TestDownsampleMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type dims struct{ sw, sh, dw, dh int }
	cases := []dims{
		{64, 48, 17, 13}, {100, 100, 100, 100}, {99, 7, 13, 3},
		{7, 99, 3, 13}, {160, 120, 16, 12}, {31, 31, 30, 30},
		{2, 2, 1, 1}, {640, 352, 63, 35},
	}
	for i := 0; i < 12; i++ {
		sw := 1 + rng.Intn(200)
		sh := 1 + rng.Intn(200)
		cases = append(cases, dims{sw, sh, 1 + rng.Intn(sw), 1 + rng.Intn(sh)})
	}
	for _, c := range cases {
		src := randomImage(rng, c.sw, c.sh)
		fast := New(c.dw, c.dh)
		naive := New(c.dw, c.dh)
		DownsampleInto(fast, src)
		downsampleNaiveInto(naive, src)
		checkFinite(t, fast, "downsample fast")
		if d := maxAbsDiff(fast, naive); d > 1e-5 {
			t.Errorf("downsample %dx%d -> %dx%d: max diff %g > 1e-5", c.sw, c.sh, c.dw, c.dh, d)
		}
	}
}

// TestBoxBlurMatchesNaive property-tests the separable sliding-window blur
// against the direct O(r^2)-per-pixel oracle for radii 0..8.
func TestBoxBlurMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type dims struct{ w, h int }
	cases := []dims{{1, 1}, {1, 9}, {9, 1}, {5, 5}, {33, 31}, {64, 64}, {130, 67}}
	for i := 0; i < 6; i++ {
		cases = append(cases, dims{1 + rng.Intn(120), 1 + rng.Intn(120)})
	}
	for _, c := range cases {
		src := randomImage(rng, c.w, c.h)
		for r := 0; r <= 8; r++ {
			fast := New(c.w, c.h)
			naive := New(c.w, c.h)
			BoxBlurInto(fast, src, r)
			boxBlurNaiveInto(naive, src, r)
			checkFinite(t, fast, "blur fast")
			if d := maxAbsDiff(fast, naive); d > 1e-5 {
				t.Errorf("blur %dx%d r=%d: max diff %g > 1e-5", c.w, c.h, r, d)
			}
		}
	}
}

// TestKernelsDeterministicAcrossWorkers pins the bit-identical contract:
// the same inputs produce the same output bits at Parallelism 1, 4, and 8.
func TestKernelsDeterministicAcrossWorkers(t *testing.T) {
	prev := int(kernelParallelism.Load())
	t.Cleanup(func() { SetParallelism(prev) })

	rng := rand.New(rand.NewSource(99))
	src := randomImage(rng, 320, 180)

	run := func(workers int) (*Image, *Image, *Image) {
		SetParallelism(workers)
		down := New(57, 33)
		DownsampleInto(down, src)
		blur := New(320, 180)
		BoxBlurInto(blur, src, 5)
		up := New(417, 243)
		bilinearInto(up, src)
		return down, blur, up
	}

	d1, b1, u1 := run(1)
	for _, workers := range []int{4, 8} {
		dn, bn, un := run(workers)
		for name, pair := range map[string][2]*Image{
			"downsample": {d1, dn}, "blur": {b1, bn}, "bilinear": {u1, un},
		} {
			a, b := pair[0], pair[1]
			for i := range a.Pix {
				if math.Float32bits(a.Pix[i]) != math.Float32bits(b.Pix[i]) {
					t.Fatalf("%s: pixel %d differs between 1 and %d workers: %x vs %x",
						name, i, workers, math.Float32bits(a.Pix[i]), math.Float32bits(b.Pix[i]))
				}
			}
		}
	}
}

// TestBilinearEdgeClamp is the boundary-clamp regression: 1-pixel-wide/high
// sources must replicate their row/column (the old implementation read
// out-of-bounds zeros and faded the edges to black), and constant images
// must stay constant under non-integer upscale factors.
func TestBilinearEdgeClamp(t *testing.T) {
	// 1x1 source: every output pixel is the source value.
	one := New(1, 1)
	one.Pix[0] = 0.7
	up := New(5, 4)
	bilinearInto(up, one)
	for i, v := range up.Pix {
		if math.Abs(float64(v)-0.7) > 1e-6 {
			t.Fatalf("1x1 upsample: pixel %d = %v, want 0.7", i, v)
		}
	}

	// 1xN column source: each output row replicates the interpolated column.
	col := New(1, 4)
	for y := 0; y < 4; y++ {
		col.Pix[y] = float32(y) / 3
	}
	wide := New(6, 4)
	bilinearInto(wide, col)
	for y := 0; y < 4; y++ {
		first := wide.Pix[y*6]
		for x := 1; x < 6; x++ {
			if wide.Pix[y*6+x] != first {
				t.Fatalf("1xN upsample: row %d not constant: %v vs %v", y, wide.Pix[y*6+x], first)
			}
		}
	}

	// Nx1 row source: each output column replicates the interpolated row.
	rowSrc := New(4, 1)
	for x := 0; x < 4; x++ {
		rowSrc.Pix[x] = float32(x) / 3
	}
	tall := New(4, 6)
	bilinearInto(tall, rowSrc)
	for x := 0; x < 4; x++ {
		first := tall.Pix[x]
		for y := 1; y < 6; y++ {
			if tall.Pix[y*4+x] != first {
				t.Fatalf("Nx1 upsample: col %d not constant: %v vs %v", x, tall.Pix[y*4+x], first)
			}
		}
	}

	// Constant image stays constant (and in range) at a non-integer scale.
	flat := New(7, 5)
	for i := range flat.Pix {
		flat.Pix[i] = 0.25
	}
	odd := New(11, 9)
	bilinearInto(odd, flat)
	for i, v := range odd.Pix {
		if math.Abs(float64(v)-0.25) > 1e-6 {
			t.Fatalf("flat non-integer upsample: pixel %d = %v, want 0.25", i, v)
		}
	}

	// Ramp is preserved exactly at corners: the corner samples clamp to the
	// corner source pixels.
	ramp := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			ramp.Pix[y*8+x] = float32(x+y) / 14
		}
	}
	big := New(13, 13)
	bilinearInto(big, ramp)
	checkFinite(t, big, "bilinear ramp")
	corners := [][3]int{{0, 0, 0}, {12, 0, 7}, {0, 12, 7 * 8}, {12, 12, 7*8 + 7}}
	for _, c := range corners {
		got := big.Pix[c[1]*13+c[0]]
		want := ramp.Pix[c[2]]
		if math.Abs(float64(got-want)) > 1e-6 {
			t.Fatalf("corner (%d,%d) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

// TestDownsampleNaiveIdentityPath documents that the oracle also reduces to
// a copy at identical dimensions, like the fast path.
func TestDownsampleNaiveIdentityPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomImage(rng, 12, 9)
	naive := New(12, 9)
	downsampleNaiveInto(naive, src)
	if d := maxAbsDiff(naive, src); d > 1e-6 {
		t.Fatalf("naive identity: max diff %g", d)
	}
}
