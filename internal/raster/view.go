package raster

import "math"

// MotionBlurHInto writes the horizontal motion blur of src into dst:
// dst(x, y) is the mean of the src columns [x+offX-left, x+offX+right]
// clipped to src's bounds, on the same row. It models the streaking a
// moving camera (or a deliberately long exposure) smears along the travel
// axis — the "motion blur" intervention — as a separable 1-D box along x.
//
// dst and src must have equal heights and must not alias; offX maps dst
// column 0 onto a src column, letting callers blur a padded source region
// into a smaller destination so that region renders are independent of the
// region choice (the pad carries exactly the pixels the window can reach).
// Windows are normalised by their clipped width, so edge columns average
// only real pixels and src's bounds must coincide with the frame's for
// edge behaviour to be region-independent.
//
// The kernel is a sliding window per row — O(w + left + right) per row
// instead of the naive O(w·(left+right)) scan (retained as
// motionBlurHNaiveInto, the property-test oracle). Rows fan out across
// internal/parallel; each output row is a pure function of its source row,
// so pixels are bit-identical at any Parallelism.
func MotionBlurHInto(dst, src *Image, left, right, offX int) {
	if left < 0 || right < 0 {
		panic("raster: MotionBlurHInto with negative reach")
	}
	if dst.H != src.H {
		panic("raster: MotionBlurHInto height mismatch")
	}
	w, h, sw := dst.W, dst.H, src.W
	if w == 0 || h == 0 {
		return
	}
	forRowBlocks(h, (w+left+right)*4, func(rowLo, rowHi int) {
		for y := rowLo; y < rowHi; y++ {
			srow := src.Pix[y*sw : y*sw+sw]
			drow := dst.Pix[y*w : y*w+w]
			// Seed the window for x = 0 by direct scan, then slide: each
			// step admits column x+offX+right and retires x-1+offX-left,
			// each clipped against src's bounds.
			lo := offX - left
			hi := offX + right
			var sum float64
			cnt := 0
			for cx := max(lo, 0); cx <= min(hi, sw-1); cx++ {
				sum += float64(srow[cx])
				cnt++
			}
			for x := 0; x < w; x++ {
				if cnt > 0 {
					drow[x] = float32(sum / float64(cnt))
				} else {
					drow[x] = 0
				}
				if enter := hi + 1; enter >= 0 && enter < sw {
					sum += float64(srow[enter])
					cnt++
				}
				if lo >= 0 && lo < sw {
					sum -= float64(srow[lo])
					cnt--
				}
				lo++
				hi++
			}
		}
	})
}

// motionBlurHNaiveInto is the O(w·(left+right)) reference implementation
// of MotionBlurHInto, kept as the property-test oracle.
func motionBlurHNaiveInto(dst, src *Image, left, right, offX int) {
	if dst.H != src.H {
		panic("raster: motionBlurHNaiveInto height mismatch")
	}
	for y := 0; y < dst.H; y++ {
		for x := 0; x < dst.W; x++ {
			var sum float64
			cnt := 0
			for cx := x + offX - left; cx <= x+offX+right; cx++ {
				if cx < 0 || cx >= src.W {
					continue
				}
				sum += float64(src.At(cx, y))
				cnt++
			}
			if cnt > 0 {
				dst.Set(x, y, float32(sum/float64(cnt)))
			} else {
				dst.Set(x, y, 0)
			}
		}
	}
}

// QuantizeLevels rounds every sample of img to the nearest of `levels`
// uniformly spaced intensities on [0, 1], in place. It models the
// posterization a coarse codec (JPEG-style quantization at low quality)
// applies to smooth gradients: with few levels, low-contrast objects merge
// into the background band that contains them. levels must be at least 2;
// 256 is visually lossless for this pipeline's float32 intensities.
//
// The transform is pointwise and deterministic, so it composes freely
// with any region decomposition and any Parallelism.
func QuantizeLevels(img *Image, levels int) {
	if levels < 2 {
		panic("raster: QuantizeLevels needs at least 2 levels")
	}
	scale := float64(levels - 1)
	inv := 1 / scale
	forRowBlocks(img.H, img.W*2, func(rowLo, rowHi int) {
		for i := rowLo * img.W; i < rowHi*img.W; i++ {
			v := float64(clamp01(img.Pix[i]))
			img.Pix[i] = float32(math.Round(v*scale) * inv)
		}
	})
}

// quantizeLevelsNaive is the scalar reference for QuantizeLevels, kept as
// the property-test oracle.
func quantizeLevelsNaive(img *Image, levels int) {
	scale := float64(levels - 1)
	for i, v := range img.Pix {
		img.Pix[i] = float32(math.Round(float64(clamp01(v))*scale) / scale)
	}
}
