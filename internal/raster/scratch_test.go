package raster

import "testing"

func scratchTestImage(w, h int) *Image {
	m := New(w, h)
	for i := range m.Pix {
		m.Pix[i] = float32((i*2654435761)%997) / 997
	}
	return m
}

func TestGetScratchDimensionsAndReuse(t *testing.T) {
	img := GetScratch(8, 6)
	if img.W != 8 || img.H != 6 || len(img.Pix) != 48 {
		t.Fatalf("scratch image has wrong shape: %dx%d len %d", img.W, img.H, len(img.Pix))
	}
	img.Fill(0.5)
	PutScratch(img)

	// A smaller request may reuse the same backing array; the reslice must
	// still expose exactly w*h samples.
	small := GetScratch(2, 3)
	if small.W != 2 || small.H != 3 || len(small.Pix) != 6 {
		t.Fatalf("reused scratch has wrong shape: %dx%d len %d", small.W, small.H, len(small.Pix))
	}
	PutScratch(small)
	PutScratch(nil) // must not panic
}

func TestGetScratchInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive size")
		}
	}()
	GetScratch(0, 5)
}

func TestDownsampleIntoMatchesDownsample(t *testing.T) {
	src := scratchTestImage(64, 48)
	cases := []struct{ w, h int }{
		{16, 12},  // box downsample
		{64, 48},  // same size (copy)
		{96, 80},  // bilinear upsample
		{31, 17},  // non-integral ratio
		{100, 10}, // mixed: upsample x, downsample y falls to bilinear
	}
	for _, c := range cases {
		want := Downsample(src, c.w, c.h)
		dst := GetScratch(c.w, c.h)
		dst.Fill(1) // stale contents must be fully overwritten
		DownsampleInto(dst, src)
		for i := range want.Pix {
			if dst.Pix[i] != want.Pix[i] {
				t.Fatalf("%dx%d: pixel %d differs: %v vs %v", c.w, c.h, i, dst.Pix[i], want.Pix[i])
			}
		}
		PutScratch(dst)
	}
}

func TestBoxBlurIntoMatchesBoxBlur(t *testing.T) {
	src := scratchTestImage(40, 30)
	for _, r := range []int{0, 1, 3} {
		want := BoxBlur(src, r)
		dst := GetScratch(src.W, src.H)
		dst.Fill(0.25)
		BoxBlurInto(dst, src, r)
		for i := range want.Pix {
			if dst.Pix[i] != want.Pix[i] {
				t.Fatalf("r=%d: pixel %d differs: %v vs %v", r, i, dst.Pix[i], want.Pix[i])
			}
		}
		PutScratch(dst)
	}
}

func TestBoxBlurIntoSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size mismatch")
		}
	}()
	BoxBlurInto(New(3, 3), New(4, 4), 1)
}
