package raster

import (
	"sync"
	"sync/atomic"

	"smokescreen/internal/parallel"
)

// Kernel parallelism. The separable kernels below (DownsampleInto,
// BoxBlurInto, bilinearInto) fan rows out across the bounded worker pool in
// internal/parallel when the image is large enough to pay for goroutines.
// Work is partitioned into FIXED row blocks whose boundaries depend only on
// the image size — never on the worker count — and every output row is
// computed from its inputs alone, so results are bit-for-bit identical at
// any parallelism setting (pinned by TestKernelsDeterministicAcrossWorkers).
//
// The default is 1 (sequential): the detection hot paths already run one
// frame per worker via internal/parallel, and nesting pools oversubscribes
// the CPU. Interactive full-frame workloads (cmd/smokescreend) raise it.

var kernelParallelism atomic.Int32

// SetParallelism bounds the worker goroutines the raster kernels may use
// for row fan-out: 1 (the default) is sequential, 0 or negative means one
// worker per CPU. Output pixels are identical at any setting.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	kernelParallelism.Store(int32(n))
}

func init() { kernelParallelism.Store(1) }

// Parallelism returns the resolved kernel worker bound.
func Parallelism() int {
	n := int(kernelParallelism.Load())
	if n == 1 {
		return 1
	}
	return parallel.Workers(n)
}

const (
	// kernelRowBlock is the fixed row-block granule of kernel fan-out. The
	// vertical blur pass re-seeds its running window sum at every block
	// boundary, so the block size is part of the numeric contract: it must
	// not depend on the worker count.
	kernelRowBlock = 32
	// kernelParallelMinWork is the approximate pixel-op count under which
	// fan-out never pays for goroutine handoff; small patch kernels in the
	// detection hot path stay on the calling goroutine.
	kernelParallelMinWork = 1 << 16
)

// forRowBlocks partitions [0, n) into kernelRowBlock-sized blocks and runs
// fn(lo, hi) for each. Blocks run on the calling goroutine unless the
// kernel parallelism setting allows workers and the total work (an op-count
// estimate) justifies them. Block boundaries are a pure function of n.
func forRowBlocks(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	blocks := (n + kernelRowBlock - 1) / kernelRowBlock
	workers := Parallelism()
	if workers <= 1 || blocks <= 1 || work < kernelParallelMinWork {
		for b := 0; b < blocks; b++ {
			lo := b * kernelRowBlock
			hi := lo + kernelRowBlock
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	parallel.For(blocks, workers, func(b int) {
		lo := b * kernelRowBlock
		hi := lo + kernelRowBlock
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// f64Pool recycles the float64 accumulator slabs (prefix sums, row sums,
// sliding windows) that the separable kernels need per call. Pooled slabs
// are resliced, never zeroed; every consumer overwrites its slab fully
// before reading.
var f64Pool sync.Pool

func getF64(n int) []float64 {
	if v := f64Pool.Get(); v != nil {
		if s := v.([]float64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putF64(s []float64) {
	if s != nil {
		f64Pool.Put(s[:cap(s)]) //nolint:staticcheck // slab reuse outweighs the header box
	}
}
