package raster

import "sync"

// Quantized rasters. Plane8 stores samples as uint8 (v ≈ round(255·v01)):
// one quarter of the float32 footprint, and the separable kernels below run
// on widened integer accumulators (uint32 row sums, int64 window reductions)
// instead of float64, which both narrows memory traffic and lets the inner
// loops unroll 8 wide without precision anxiety. The quantized path is an
// OPT-IN approximation of the float path: every kernel here is
// property-tested against the retained float oracles within a small LSB
// tolerance (see quant_test.go), exactly like the PR 3 naive kernels, and
// the float path remains the default and the ground truth.
//
// Worker-count determinism carries over unchanged: the kernels partition
// work with the same fixed 32-row blocks (forRowBlocks), every output
// sample is a pure function of its inputs, and integer accumulation is
// exact, so quantized pixels are bit-identical at any Parallelism setting.

// Plane8 is a w x h raster of uint8 samples; 0 maps to 0.0 and 255 to 1.0.
type Plane8 struct {
	W, H int
	Pix  []uint8
}

// NewPlane8 returns a zeroed w x h plane.
func NewPlane8(w, h int) *Plane8 {
	return &Plane8{W: w, H: h, Pix: make([]uint8, w*h)}
}

// quantize maps a clamped [0,1] float sample to its uint8 code.
func quantize(v float32) uint8 {
	q := int32(v*255 + 0.5)
	if q < 0 {
		q = 0
	} else if q > 255 {
		q = 255
	}
	return uint8(q)
}

// Dequant8 maps a uint8 code back to its [0,1] float value.
func Dequant8(q uint8) float32 { return float32(q) * (1.0 / 255.0) }

// FromImage quantizes src into p, which must share its dimensions. The
// inner loop is unrolled 8 wide; every destination sample is overwritten,
// so p may come from GetScratch8.
func (p *Plane8) FromImage(src *Image) {
	if p.W != src.W || p.H != src.H {
		panic("raster: FromImage size mismatch")
	}
	n := len(p.Pix)
	i := 0
	for ; i+8 <= n; i += 8 {
		p.Pix[i+0] = quantize(src.Pix[i+0])
		p.Pix[i+1] = quantize(src.Pix[i+1])
		p.Pix[i+2] = quantize(src.Pix[i+2])
		p.Pix[i+3] = quantize(src.Pix[i+3])
		p.Pix[i+4] = quantize(src.Pix[i+4])
		p.Pix[i+5] = quantize(src.Pix[i+5])
		p.Pix[i+6] = quantize(src.Pix[i+6])
		p.Pix[i+7] = quantize(src.Pix[i+7])
	}
	for ; i < n; i++ {
		p.Pix[i] = quantize(src.Pix[i])
	}
}

// ToImage dequantizes p into dst, which must share its dimensions.
func (p *Plane8) ToImage(dst *Image) {
	if p.W != dst.W || p.H != dst.H {
		panic("raster: ToImage size mismatch")
	}
	for i, q := range p.Pix {
		dst.Pix[i] = Dequant8(q)
	}
}

// scratch8Pool recycles Plane8 headers + slabs for the quantized hot path,
// mirroring scratchPool for float images: pooled planes are resliced, never
// zeroed, and must be fully overwritten before reading.
var scratch8Pool = sync.Pool{New: func() any { return &Plane8{} }}

// GetScratch8 returns a w x h plane from the pool with UNDEFINED contents —
// callers must overwrite every sample before reading. Release with
// PutScratch8; the plane must not be retained or read after release.
func GetScratch8(w, h int) *Plane8 {
	if w <= 0 || h <= 0 {
		panic("raster: GetScratch8 with non-positive size")
	}
	p := scratch8Pool.Get().(*Plane8)
	p.W, p.H = w, h
	if cap(p.Pix) < w*h {
		p.Pix = make([]uint8, w*h)
	} else {
		p.Pix = p.Pix[:w*h]
	}
	return p
}

// PutScratch8 returns a plane obtained from GetScratch8 to the pool. It is
// safe (a no-op) on nil.
func PutScratch8(p *Plane8) {
	if p == nil {
		return
	}
	scratch8Pool.Put(p)
}

// i32Pool and i64Pool recycle the widened integer accumulator slabs of the
// quantized kernels, mirroring f64Pool: resliced, never zeroed, fully
// overwritten by every consumer before reading.
var (
	i32Pool sync.Pool
	i64Pool sync.Pool
)

func getI32(n int) []int32 {
	if v := i32Pool.Get(); v != nil {
		if s := v.([]int32); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int32, n)
}

func putI32(s []int32) {
	if s != nil {
		i32Pool.Put(s[:cap(s)]) //nolint:staticcheck // slab reuse outweighs the header box
	}
}

func getI64(n int) []int64 {
	if v := i64Pool.Get(); v != nil {
		if s := v.([]int64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int64, n)
}

func putI64(s []int64) {
	if s != nil {
		i64Pool.Put(s[:cap(s)]) //nolint:staticcheck // slab reuse outweighs the header box
	}
}

// clampRound8 rounds a non-negative float64 sample in 255-scale to uint8.
func clampRound8(v float64) uint8 {
	q := int32(v + 0.5)
	if q < 0 {
		q = 0
	} else if q > 255 {
		q = 255
	}
	return uint8(q)
}

// DownsampleInto8 is the quantized analog of DownsampleInto: box-filter
// area averaging of src into dst at dst's dimensions. The horizontal pass
// computes uint32 row prefix sums and evaluates each destination column's
// continuous window integral in Q8 fixed point (boundary fractions
// quantized to 1/256); the vertical pass reduces those row integrals with
// Q8 boundary weights into an int64 accumulator, so the only float
// operation is the final per-sample normalisation. Upsampling along either
// axis round-trips through the float bilinear kernel (it is off the
// detection hot path). dst and src must not alias.
func DownsampleInto8(dst, src *Plane8) {
	w, h := dst.W, dst.H
	if w <= 0 || h <= 0 {
		panic("raster: DownsampleInto8 to non-positive size")
	}
	if w == src.W && h == src.H {
		copy(dst.Pix, src.Pix)
		return
	}
	if w > src.W || h > src.H {
		sf := GetScratch(src.W, src.H)
		df := GetScratch(w, h)
		src.ToImage(sf)
		bilinearInto(df, sf)
		dst.FromImage(df)
		PutScratch(df)
		PutScratch(sf)
		return
	}
	downsampleFast8Into(dst, src)
}

func downsampleFast8Into(dst, src *Plane8) {
	w, h := dst.W, dst.H
	sw, sh := src.W, src.H

	xwin := getAxisWindows(w)
	defer putAxisWindows(xwin)
	makeAxisWindows(xwin, sw, w)

	// Boundary fractions in Q8: fq = round(f·256). The quantization error is
	// at most 1/512 of one boundary pixel (≤ 0.5 in 255-scale) per row
	// integral, which the window-area normalisation shrinks below 1 LSB for
	// every window wider than one source pixel.
	f0q := getI32(w)
	defer putI32(f0q)
	f1q := getI32(w)
	defer putI32(f1q)
	for dx := 0; dx < w; dx++ {
		f0q[dx] = int32(xwin[dx].f0*256 + 0.5)
		f1q[dx] = int32(xwin[dx].f1*256 + 0.5)
	}

	// Horizontal pass: rowInt[sy*w+dx] = 256 x the continuous integral of
	// source row sy over destination column dx's window, exactly
	// 256·(P[i1]-P[i0]) + f1q·row[i1] - f0q·row[i0] with uint32 prefix P.
	rowInt := getI32(sh * w)
	defer putI32(rowInt)
	forRowBlocks(sh, sh*(sw+w), func(lo, hi int) {
		prefix := getI32(sw + 1)
		defer putI32(prefix)
		for sy := lo; sy < hi; sy++ {
			row := src.Pix[sy*sw : (sy+1)*sw]
			prefix[0] = 0
			var sum int32
			for x, v := range row {
				sum += int32(v)
				prefix[x+1] = sum
			}
			out := rowInt[sy*w : (sy+1)*w]
			for dx := range out {
				xw := &xwin[dx]
				c0 := prefix[xw.i0]<<8 + f0q[dx]*int32(row[xw.i0])
				c1 := prefix[xw.i1]<<8 + f1q[dx]*int32(row[xw.i1])
				out[dx] = c1 - c0
			}
		}
	})

	// Vertical pass: int64 accumulation of Q8-weighted row integrals (total
	// scale 2^16), one float multiply per output sample to normalise. The
	// unrolled accumulate loop is the hottest loop of the quantized path.
	forRowBlocks(h, h*(sh/h+2)*w, func(lo, hi int) {
		acc := getI64(w)
		defer putI64(acc)
		yRatio := float64(sh) / float64(h)
		for dy := lo; dy < hi; dy++ {
			y0 := float64(dy) * yRatio
			y1 := float64(dy+1) * yRatio
			iy0 := int(y0)
			iy1 := int(y1)
			if iy1 > sh-1 {
				iy1 = sh - 1
			}
			for i := range acc {
				acc[i] = 0
			}
			for sy := iy0; sy <= iy1; sy++ {
				wy := 1.0
				if sy == iy0 {
					wy -= y0 - float64(iy0)
				}
				if sy == iy1 {
					wy -= float64(iy1) + 1 - y1
				}
				if wy <= 0 {
					continue
				}
				wyq := int64(wy*256 + 0.5)
				if wyq == 0 {
					continue
				}
				ri := rowInt[sy*w : (sy+1)*w]
				accumulateQ8(acc, ri, wyq)
			}
			invY := 1 / (y1 - y0)
			out := dst.Pix[dy*w : (dy+1)*w]
			for dx := range out {
				out[dx] = clampRound8(float64(acc[dx]) * (xwin[dx].inv * invY * (1.0 / 65536.0)))
			}
		}
	})
}

// accumulateQ8 adds wyq·ri into acc, unrolled 8 wide. len(ri) == len(acc).
func accumulateQ8(acc []int64, ri []int32, wyq int64) {
	n := len(acc)
	i := 0
	for ; i+8 <= n; i += 8 {
		acc[i+0] += wyq * int64(ri[i+0])
		acc[i+1] += wyq * int64(ri[i+1])
		acc[i+2] += wyq * int64(ri[i+2])
		acc[i+3] += wyq * int64(ri[i+3])
		acc[i+4] += wyq * int64(ri[i+4])
		acc[i+5] += wyq * int64(ri[i+5])
		acc[i+6] += wyq * int64(ri[i+6])
		acc[i+7] += wyq * int64(ri[i+7])
	}
	for ; i < n; i++ {
		acc[i] += wyq * int64(ri[i])
	}
}

// BoxBlurInto8 is the quantized analog of BoxBlurInto: a separable
// two-pass sliding-window box blur with int32 row sums and an int32 column
// accumulator, re-seeded at every fixed 32-row block boundary so output
// bits are a function of the image size alone. dst must share src's
// dimensions and not alias it.
func BoxBlurInto8(dst, src *Plane8, r int) {
	if dst.W != src.W || dst.H != src.H {
		panic("raster: BoxBlurInto8 size mismatch")
	}
	if r <= 0 {
		copy(dst.Pix, src.Pix)
		return
	}
	w, h := src.W, src.H

	// Horizontal pass: hs[y*w+x] = sum of src row y over [x-r, x+r]&bounds.
	hs := getI32(w * h)
	defer putI32(hs)
	forRowBlocks(h, h*w*2, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := src.Pix[y*w : (y+1)*w]
			out := hs[y*w : (y+1)*w]
			var sum int32
			for x := 0; x <= r && x < w; x++ {
				sum += int32(row[x])
			}
			for x := 0; x < w; x++ {
				out[x] = sum
				if x+r+1 < w {
					sum += int32(row[x+r+1])
				}
				if x-r >= 0 {
					sum -= int32(row[x-r])
				}
			}
		}
	})

	invCntX := getF64(w)
	defer putF64(invCntX)
	for x := 0; x < w; x++ {
		x0, x1 := x-r, x+r+1
		if x0 < 0 {
			x0 = 0
		}
		if x1 > w {
			x1 = w
		}
		invCntX[x] = 1 / float64(x1-x0)
	}

	// Vertical pass: integer sliding window; the add/sub row updates are
	// unrolled 8 wide. Window sums stay well inside int32:
	// 255·(2r+1)^2 overflows only past r ≈ 1400.
	forRowBlocks(h, h*w*2+(h/kernelRowBlock+1)*(2*r+1)*w, func(lo, hi int) {
		vacc := getI32(w)
		defer putI32(vacc)
		for i := range vacc {
			vacc[i] = 0
		}
		yw0, yw1 := lo-r, lo+r+1
		if yw0 < 0 {
			yw0 = 0
		}
		if yw1 > h {
			yw1 = h
		}
		for y := yw0; y < yw1; y++ {
			addRows8(vacc, hs[y*w:(y+1)*w])
		}
		for y := lo; y < hi; y++ {
			y0, y1 := y-r, y+r+1
			if y0 < 0 {
				y0 = 0
			}
			if y1 > h {
				y1 = h
			}
			invCntY := 1 / float64(y1-y0)
			out := dst.Pix[y*w : (y+1)*w]
			for x := range out {
				out[x] = clampRound8(float64(vacc[x]) * invCntX[x] * invCntY)
			}
			if y+1 < hi {
				if y+r+1 < h {
					addRows8(vacc, hs[(y+r+1)*w:(y+r+2)*w])
				}
				if y-r >= 0 {
					subRows8(vacc, hs[(y-r)*w:(y-r+1)*w])
				}
			}
		}
	})
}

// addRows8 adds row into acc element-wise, unrolled 8 wide.
func addRows8(acc, row []int32) {
	n := len(acc)
	i := 0
	for ; i+8 <= n; i += 8 {
		acc[i+0] += row[i+0]
		acc[i+1] += row[i+1]
		acc[i+2] += row[i+2]
		acc[i+3] += row[i+3]
		acc[i+4] += row[i+4]
		acc[i+5] += row[i+5]
		acc[i+6] += row[i+6]
		acc[i+7] += row[i+7]
	}
	for ; i < n; i++ {
		acc[i] += row[i]
	}
}

// subRows8 subtracts row from acc element-wise, unrolled 8 wide.
func subRows8(acc, row []int32) {
	n := len(acc)
	i := 0
	for ; i+8 <= n; i += 8 {
		acc[i+0] -= row[i+0]
		acc[i+1] -= row[i+1]
		acc[i+2] -= row[i+2]
		acc[i+3] -= row[i+3]
		acc[i+4] -= row[i+4]
		acc[i+5] -= row[i+5]
		acc[i+6] -= row[i+6]
		acc[i+7] -= row[i+7]
	}
	for ; i < n; i++ {
		acc[i] -= row[i]
	}
}

// AddNoise8 is the quantized analog of Image.AddNoise: the same per-pixel
// Irwin–Hall(3) hash noise, evaluated entirely in fixed point. The float
// kernel computes clamp01(v + (u1+u2+u3)·sigma/0.5) with each u drawn from
// a 21-bit hash field; here the three fields are summed, centered, and
// scaled by kq = round(2·sigma·255·2^16) so the 255-scale perturbation is
// (centered·kq + 2^36) >> 37 — a round-to-nearest Q(21+16) evaluation that
// lands within 1 LSB of quantizing the float kernel's output.
func (p *Plane8) AddNoise8(seed uint64, sigma float32) {
	if sigma <= 0 {
		return
	}
	kq := int64(float64(sigma)*2*255*65536 + 0.5)
	w := p.W
	forRowBlocks(p.H, p.H*w*2, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := p.Pix[y*w : (y+1)*w]
			for x := range row {
				h := pixelHash(seed, x, y)
				centered := int64(h&0x1fffff) + int64((h>>21)&0x1fffff) + int64((h>>42)&0x1fffff) - 3*(1<<20)
				delta := (centered*kq + (1 << 36)) >> 37
				q := int64(row[x]) + delta
				if q < 0 {
					q = 0
				} else if q > 255 {
					q = 255
				}
				row[x] = uint8(q)
			}
		}
	})
}
