package raster

// Downsample resizes the image to (w, h) using box-filter area averaging —
// the physically correct model of what a lower-resolution sensor (or a
// standards-compliant video rescaler) does to a frame. Each destination
// pixel is the area-weighted average of the source pixels it covers, so
// small objects lose contrast against the background as their boundary
// pixels are averaged away. This is the mechanism by which the reduced
// frame resolution intervention destroys detectability.
//
// Upsampling requests fall back to bilinear interpolation; scale factors of
// exactly 1 return a clone.
func Downsample(src *Image, w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("raster: Downsample to non-positive size")
	}
	dst := New(w, h)
	DownsampleInto(dst, src)
	return dst
}

// DownsampleInto resamples src into dst at dst's dimensions, overwriting
// every destination sample. It is the allocation-free core of Downsample:
// detection hot paths pair it with GetScratch/PutScratch so per-frame
// rasters come from a pool instead of the heap. dst and src must not alias.
func DownsampleInto(dst, src *Image) {
	w, h := dst.W, dst.H
	if w <= 0 || h <= 0 {
		panic("raster: DownsampleInto to non-positive size")
	}
	if w == src.W && h == src.H {
		copy(dst.Pix, src.Pix)
		return
	}
	if w > src.W || h > src.H {
		bilinearInto(dst, src)
		return
	}
	xRatio := float64(src.W) / float64(w)
	yRatio := float64(src.H) / float64(h)
	for dy := 0; dy < h; dy++ {
		sy0 := float64(dy) * yRatio
		sy1 := float64(dy+1) * yRatio
		for dx := 0; dx < w; dx++ {
			sx0 := float64(dx) * xRatio
			sx1 := float64(dx+1) * xRatio
			dst.Pix[dy*w+dx] = boxAverage(src, sx0, sy0, sx1, sy1)
		}
	}
}

// boxAverage integrates the source image over the continuous box
// [x0,x1)x[y0,y1) with partial-pixel weighting at the edges.
func boxAverage(src *Image, x0, y0, x1, y1 float64) float32 {
	ix0, iy0 := int(x0), int(y0)
	ix1, iy1 := int(x1), int(y1)
	if ix1 >= src.W {
		ix1 = src.W - 1
	}
	if iy1 >= src.H {
		iy1 = src.H - 1
	}
	var sum, weight float64
	for sy := iy0; sy <= iy1; sy++ {
		wy := 1.0
		if sy == iy0 {
			wy -= y0 - float64(iy0)
		}
		if sy == iy1 {
			wy -= float64(iy1) + 1 - y1
		}
		if wy <= 0 {
			continue
		}
		row := sy * src.W
		for sx := ix0; sx <= ix1; sx++ {
			wx := 1.0
			if sx == ix0 {
				wx -= x0 - float64(ix0)
			}
			if sx == ix1 {
				wx -= float64(ix1) + 1 - x1
			}
			if wx <= 0 {
				continue
			}
			sum += float64(src.Pix[row+sx]) * wx * wy
			weight += wx * wy
		}
	}
	if weight == 0 {
		return 0
	}
	return float32(sum / weight)
}

// bilinearInto resizes with bilinear interpolation; only used for the rare
// upsampling path (e.g. rendering previews).
func bilinearInto(dst, src *Image) {
	w, h := dst.W, dst.H
	for dy := 0; dy < h; dy++ {
		sy := (float64(dy)+0.5)*float64(src.H)/float64(h) - 0.5
		y0 := int(sy)
		fy := float32(sy - float64(y0))
		if sy < 0 {
			y0, fy = 0, 0
		}
		for dx := 0; dx < w; dx++ {
			sx := (float64(dx)+0.5)*float64(src.W)/float64(w) - 0.5
			x0 := int(sx)
			fx := float32(sx - float64(x0))
			if sx < 0 {
				x0, fx = 0, 0
			}
			v00 := src.At(x0, y0)
			v10 := src.At(x0+1, y0)
			v01 := src.At(x0, y0+1)
			v11 := src.At(x0+1, y0+1)
			top := v00 + (v10-v00)*fx
			bot := v01 + (v11-v01)*fx
			dst.Pix[dy*w+dx] = top + (bot-top)*fy
		}
	}
}

// BoxBlur applies a (2r+1)x(2r+1) box blur using a summed-area table, the
// detector's background-estimation primitive. Border pixels average over
// the in-bounds part of the kernel.
func BoxBlur(src *Image, r int) *Image {
	dst := New(src.W, src.H)
	BoxBlurInto(dst, src, r)
	return dst
}

// BoxBlurInto writes the box blur of src into dst, which must share src's
// dimensions and not alias it. Every destination sample is overwritten, so
// dst may come from GetScratch.
func BoxBlurInto(dst, src *Image, r int) {
	if dst.W != src.W || dst.H != src.H {
		panic("raster: BoxBlurInto size mismatch")
	}
	if r <= 0 {
		copy(dst.Pix, src.Pix)
		return
	}
	integral := Integral(src)
	for y := 0; y < src.H; y++ {
		y0, y1 := y-r, y+r+1
		if y0 < 0 {
			y0 = 0
		}
		if y1 > src.H {
			y1 = src.H
		}
		for x := 0; x < src.W; x++ {
			x0, x1 := x-r, x+r+1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > src.W {
				x1 = src.W
			}
			area := float64((x1 - x0) * (y1 - y0))
			dst.Pix[y*src.W+x] = float32(integral.SumRect(x0, y0, x1, y1) / area)
		}
	}
}

// IntegralImage is a summed-area table supporting O(1) rectangle sums.
type IntegralImage struct {
	W, H int
	// sums has (W+1)*(H+1) entries; sums[(y)*(W+1)+x] is the sum of all
	// pixels strictly above and to the left of (x, y).
	sums []float64
}

// Integral builds the summed-area table of src.
func Integral(src *Image) *IntegralImage {
	w1 := src.W + 1
	t := &IntegralImage{W: src.W, H: src.H, sums: make([]float64, w1*(src.H+1))}
	for y := 0; y < src.H; y++ {
		var rowSum float64
		for x := 0; x < src.W; x++ {
			rowSum += float64(src.Pix[y*src.W+x])
			t.sums[(y+1)*w1+x+1] = t.sums[y*w1+x+1] + rowSum
		}
	}
	return t
}

// SumRect returns the sum of pixels in [x0,x1)x[y0,y1). Bounds must be
// within the image; callers clamp first.
func (t *IntegralImage) SumRect(x0, y0, x1, y1 int) float64 {
	w1 := t.W + 1
	return t.sums[y1*w1+x1] - t.sums[y0*w1+x1] - t.sums[y1*w1+x0] + t.sums[y0*w1+x0]
}
