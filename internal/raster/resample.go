package raster

import "sync"

// Downsample resizes the image to (w, h) using box-filter area averaging —
// the physically correct model of what a lower-resolution sensor (or a
// standards-compliant video rescaler) does to a frame. Each destination
// pixel is the area-weighted average of the source pixels it covers, so
// small objects lose contrast against the background as their boundary
// pixels are averaged away. This is the mechanism by which the reduced
// frame resolution intervention destroys detectability.
//
// Upsampling requests fall back to bilinear interpolation; scale factors of
// exactly 1 return a clone.
func Downsample(src *Image, w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("raster: Downsample to non-positive size")
	}
	dst := New(w, h)
	DownsampleInto(dst, src)
	return dst
}

// DownsampleInto resamples src into dst at dst's dimensions, overwriting
// every destination sample. It is the allocation-free core of Downsample:
// detection hot paths pair it with GetScratch/PutScratch so per-frame
// rasters come from a pool instead of the heap. dst and src must not alias.
//
// The downsampling path is a separable prefix-sum kernel: each source row
// is integrated once (a running prefix sum), destination columns read
// their continuous-box integral from it in O(1), and destination rows
// reduce the per-row integrals with boundary weights — O(src + dst) total
// instead of the O(window) scan per destination pixel of the naive form
// (retained below as downsampleNaiveInto, the test oracle). Rows fan out
// across internal/parallel; every output row is a pure function of its
// inputs, so pixels are bit-identical at any Parallelism.
func DownsampleInto(dst, src *Image) {
	w, h := dst.W, dst.H
	if w <= 0 || h <= 0 {
		panic("raster: DownsampleInto to non-positive size")
	}
	if w == src.W && h == src.H {
		copy(dst.Pix, src.Pix)
		return
	}
	if w > src.W || h > src.H {
		bilinearInto(dst, src)
		return
	}
	downsampleFastInto(dst, src)
}

// axisWindow precomputes, for one destination axis index, the continuous
// source window [lo, hi) in the prefix-sum formulation: the window integral
// is C(hi) - C(lo) with C(t) = P[i] + f*pix[i], i = min(int(t), n-1),
// f = t - i, where P is the axis prefix sum. inv is 1/(hi-lo), the
// normalising width (the naive kernel's accumulated weight along this axis).
type axisWindow struct {
	i0, i1 int32
	f0, f1 float64
	inv    float64
}

// makeAxisWindows fills win (length dstN) for a source axis of length srcN.
func makeAxisWindows(win []axisWindow, srcN, dstN int) {
	ratio := float64(srcN) / float64(dstN)
	for d := 0; d < dstN; d++ {
		lo := float64(d) * ratio
		hi := float64(d+1) * ratio
		i0 := int(lo)
		if i0 > srcN-1 {
			i0 = srcN - 1
		}
		i1 := int(hi)
		if i1 > srcN-1 {
			i1 = srcN - 1
		}
		win[d] = axisWindow{
			i0: int32(i0), i1: int32(i1),
			f0: lo - float64(i0), f1: hi - float64(i1),
			inv: 1 / (hi - lo),
		}
	}
}

// axisWindowPool recycles the per-call window tables.
var axisWindowPool sync.Pool

func getAxisWindows(n int) []axisWindow {
	if v := axisWindowPool.Get(); v != nil {
		if s := v.([]axisWindow); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]axisWindow, n)
}

func putAxisWindows(s []axisWindow) {
	axisWindowPool.Put(s[:cap(s)]) //nolint:staticcheck // slab reuse outweighs the header box
}

func downsampleFastInto(dst, src *Image) {
	w, h := dst.W, dst.H
	sw, sh := src.W, src.H

	xwin := getAxisWindows(w)
	defer putAxisWindows(xwin)
	makeAxisWindows(xwin, sw, w)

	// Horizontal pass: rowInt[sy*w+dx] is the continuous integral of source
	// row sy over destination column dx's window.
	rowInt := getF64(sh * w)
	defer putF64(rowInt)
	forRowBlocks(sh, sh*(sw+w), func(lo, hi int) {
		prefix := getF64(sw + 1)
		defer putF64(prefix)
		for sy := lo; sy < hi; sy++ {
			row := src.Pix[sy*sw : (sy+1)*sw]
			prefix[0] = 0
			var sum float64
			for x, v := range row {
				sum += float64(v)
				prefix[x+1] = sum
			}
			out := rowInt[sy*w : (sy+1)*w]
			for dx := range out {
				xw := &xwin[dx]
				c0 := prefix[xw.i0] + xw.f0*float64(row[xw.i0])
				c1 := prefix[xw.i1] + xw.f1*float64(row[xw.i1])
				out[dx] = c1 - c0
			}
		}
	})

	// Vertical pass: each destination row reduces its source-row window of
	// rowInt with the naive kernel's boundary weights, then normalises by
	// the continuous box area. Destination rows are independent, so this
	// pass fans out without any cross-row accumulator.
	forRowBlocks(h, h*(sh/h+2)*w, func(lo, hi int) {
		acc := getF64(w)
		defer putF64(acc)
		yRatio := float64(sh) / float64(h)
		for dy := lo; dy < hi; dy++ {
			y0 := float64(dy) * yRatio
			y1 := float64(dy+1) * yRatio
			iy0 := int(y0)
			iy1 := int(y1)
			if iy1 > sh-1 {
				iy1 = sh - 1
			}
			for i := range acc {
				acc[i] = 0
			}
			for sy := iy0; sy <= iy1; sy++ {
				wy := 1.0
				if sy == iy0 {
					wy -= y0 - float64(iy0)
				}
				if sy == iy1 {
					wy -= float64(iy1) + 1 - y1
				}
				if wy <= 0 {
					continue
				}
				ri := rowInt[sy*w : (sy+1)*w]
				for dx := range acc {
					acc[dx] += wy * ri[dx]
				}
			}
			invY := 1 / (y1 - y0)
			out := dst.Pix[dy*w : (dy+1)*w]
			for dx := range out {
				out[dx] = float32(acc[dx] * xwin[dx].inv * invY)
			}
		}
	})
}

// downsampleNaiveInto is the reference box-filter downsampler: every
// destination pixel scans its full source window via boxAverage. It is the
// oracle the fast prefix-sum kernel is property-tested against (1e-5 per
// pixel) and is otherwise unused.
func downsampleNaiveInto(dst, src *Image) {
	w, h := dst.W, dst.H
	xRatio := float64(src.W) / float64(w)
	yRatio := float64(src.H) / float64(h)
	for dy := 0; dy < h; dy++ {
		sy0 := float64(dy) * yRatio
		sy1 := float64(dy+1) * yRatio
		for dx := 0; dx < w; dx++ {
			sx0 := float64(dx) * xRatio
			sx1 := float64(dx+1) * xRatio
			dst.Pix[dy*w+dx] = boxAverage(src, sx0, sy0, sx1, sy1)
		}
	}
}

// boxAverage integrates the source image over the continuous box
// [x0,x1)x[y0,y1) with partial-pixel weighting at the edges.
func boxAverage(src *Image, x0, y0, x1, y1 float64) float32 {
	ix0, iy0 := int(x0), int(y0)
	ix1, iy1 := int(x1), int(y1)
	if ix1 >= src.W {
		ix1 = src.W - 1
	}
	if iy1 >= src.H {
		iy1 = src.H - 1
	}
	var sum, weight float64
	for sy := iy0; sy <= iy1; sy++ {
		wy := 1.0
		if sy == iy0 {
			wy -= y0 - float64(iy0)
		}
		if sy == iy1 {
			wy -= float64(iy1) + 1 - y1
		}
		if wy <= 0 {
			continue
		}
		row := sy * src.W
		for sx := ix0; sx <= ix1; sx++ {
			wx := 1.0
			if sx == ix0 {
				wx -= x0 - float64(ix0)
			}
			if sx == ix1 {
				wx -= float64(ix1) + 1 - x1
			}
			if wx <= 0 {
				continue
			}
			sum += float64(src.Pix[row+sx]) * wx * wy
			weight += wx * wy
		}
	}
	if weight == 0 {
		return 0
	}
	return float32(sum / weight)
}

// bilinearInto resizes with bilinear interpolation; used for the upsampling
// path (rendering previews, and model input sizes above the capture
// resolution along either axis). Sampling coordinates are clamped to the
// source bounds, so edge pixels replicate the nearest source sample — a
// 1-pixel-wide or -high source tiles its row/column instead of fading to
// black as the old out-of-bounds reads (which returned 0) did.
func bilinearInto(dst, src *Image) {
	w, h := dst.W, dst.H
	sw, sh := src.W, src.H
	forRowBlocks(h, h*w*4, func(lo, hi int) {
		for dy := lo; dy < hi; dy++ {
			sy := (float64(dy)+0.5)*float64(sh)/float64(h) - 0.5
			y0 := int(sy)
			fy := float32(sy - float64(y0))
			if sy <= 0 {
				y0, fy = 0, 0
			} else if y0 >= sh-1 {
				y0, fy = sh-1, 0
			}
			y1 := y0 + 1
			if y1 > sh-1 {
				y1 = sh - 1
			}
			row0 := src.Pix[y0*sw : (y0+1)*sw]
			row1 := src.Pix[y1*sw : (y1+1)*sw]
			out := dst.Pix[dy*w : (dy+1)*w]
			for dx := range out {
				sx := (float64(dx)+0.5)*float64(sw)/float64(w) - 0.5
				x0 := int(sx)
				fx := float32(sx - float64(x0))
				if sx <= 0 {
					x0, fx = 0, 0
				} else if x0 >= sw-1 {
					x0, fx = sw-1, 0
				}
				x1 := x0 + 1
				if x1 > sw-1 {
					x1 = sw - 1
				}
				v00 := row0[x0]
				v10 := row0[x1]
				v01 := row1[x0]
				v11 := row1[x1]
				top := v00 + (v10-v00)*fx
				bot := v01 + (v11-v01)*fx
				out[dx] = top + (bot-top)*fy
			}
		}
	})
}

// BoxBlur applies a (2r+1)x(2r+1) box blur, the detector's
// background-estimation primitive. Border pixels average over the
// in-bounds part of the kernel.
func BoxBlur(src *Image, r int) *Image {
	dst := New(src.W, src.H)
	BoxBlurInto(dst, src, r)
	return dst
}

// BoxBlurInto writes the box blur of src into dst, which must share src's
// dimensions and not alias it. Every destination sample is overwritten, so
// dst may come from GetScratch.
//
// The kernel is a separable two-pass sliding window with float64 running
// sums: a horizontal pass turns each row into windowed sums in O(1) per
// pixel, and a vertical pass slides a row-sum accumulator down fixed
// 32-row blocks — re-seeded at every block boundary, so the accumulation
// pattern (and hence every output bit) is a function of the image size
// alone, not of the worker count. This replaces the summed-area-table
// formulation, which allocated a (W+1)x(H+1) float64 table per call; the
// O(r^2)-per-pixel direct scan survives as boxBlurNaiveInto, the oracle
// the fast kernel is property-tested against.
func BoxBlurInto(dst, src *Image, r int) {
	if dst.W != src.W || dst.H != src.H {
		panic("raster: BoxBlurInto size mismatch")
	}
	if r <= 0 {
		copy(dst.Pix, src.Pix)
		return
	}
	w, h := src.W, src.H

	// Horizontal pass: hs[y*w+x] = sum of src row y over [x-r, x+r]&bounds.
	hs := getF64(w * h)
	defer putF64(hs)
	forRowBlocks(h, h*w*2, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := src.Pix[y*w : (y+1)*w]
			out := hs[y*w : (y+1)*w]
			var sum float64
			for x := 0; x <= r && x < w; x++ {
				sum += float64(row[x])
			}
			for x := 0; x < w; x++ {
				out[x] = sum
				if x+r+1 < w {
					sum += float64(row[x+r+1])
				}
				if x-r >= 0 {
					sum -= float64(row[x-r])
				}
			}
		}
	})

	// invCntX[x] = 1 / horizontal in-bounds window width.
	invCntX := getF64(w)
	defer putF64(invCntX)
	for x := 0; x < w; x++ {
		x0, x1 := x-r, x+r+1
		if x0 < 0 {
			x0 = 0
		}
		if x1 > w {
			x1 = w
		}
		invCntX[x] = 1 / float64(x1-x0)
	}

	// Vertical pass: slide the row-sum window down each fixed block.
	forRowBlocks(h, h*w*2+(h/kernelRowBlock+1)*(2*r+1)*w, func(lo, hi int) {
		vacc := getF64(w)
		defer putF64(vacc)
		for i := range vacc {
			vacc[i] = 0
		}
		yw0, yw1 := lo-r, lo+r+1
		if yw0 < 0 {
			yw0 = 0
		}
		if yw1 > h {
			yw1 = h
		}
		for y := yw0; y < yw1; y++ {
			row := hs[y*w : (y+1)*w]
			for x := range vacc {
				vacc[x] += row[x]
			}
		}
		for y := lo; y < hi; y++ {
			y0, y1 := y-r, y+r+1
			if y0 < 0 {
				y0 = 0
			}
			if y1 > h {
				y1 = h
			}
			invCntY := 1 / float64(y1-y0)
			out := dst.Pix[y*w : (y+1)*w]
			for x := range out {
				out[x] = float32(vacc[x] * invCntX[x] * invCntY)
			}
			if y+1 < hi {
				if y+r+1 < h {
					add := hs[(y+r+1)*w : (y+r+2)*w]
					for x := range vacc {
						vacc[x] += add[x]
					}
				}
				if y-r >= 0 {
					sub := hs[(y-r)*w : (y-r+1)*w]
					for x := range vacc {
						vacc[x] -= sub[x]
					}
				}
			}
		}
	})
}

// boxBlurNaiveInto is the O(r^2)-per-pixel reference blur: every output
// pixel scans its full in-bounds window directly. Oracle only.
func boxBlurNaiveInto(dst, src *Image, r int) {
	if dst.W != src.W || dst.H != src.H {
		panic("raster: boxBlurNaiveInto size mismatch")
	}
	if r <= 0 {
		copy(dst.Pix, src.Pix)
		return
	}
	w, h := src.W, src.H
	for y := 0; y < h; y++ {
		y0, y1 := y-r, y+r+1
		if y0 < 0 {
			y0 = 0
		}
		if y1 > h {
			y1 = h
		}
		for x := 0; x < w; x++ {
			x0, x1 := x-r, x+r+1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w {
				x1 = w
			}
			var sum float64
			for yy := y0; yy < y1; yy++ {
				row := yy * w
				for xx := x0; xx < x1; xx++ {
					sum += float64(src.Pix[row+xx])
				}
			}
			dst.Pix[y*w+x] = float32(sum / float64((x1-x0)*(y1-y0)))
		}
	}
}

// IntegralImage is a summed-area table supporting O(1) rectangle sums.
type IntegralImage struct {
	W, H int
	// sums has (W+1)*(H+1) entries; sums[(y)*(W+1)+x] is the sum of all
	// pixels strictly above and to the left of (x, y).
	sums []float64
}

// Integral builds the summed-area table of src.
func Integral(src *Image) *IntegralImage {
	w1 := src.W + 1
	t := &IntegralImage{W: src.W, H: src.H, sums: make([]float64, w1*(src.H+1))}
	for y := 0; y < src.H; y++ {
		var rowSum float64
		for x := 0; x < src.W; x++ {
			rowSum += float64(src.Pix[y*src.W+x])
			t.sums[(y+1)*w1+x+1] = t.sums[y*w1+x+1] + rowSum
		}
	}
	return t
}

// SumRect returns the sum of pixels in [x0,x1)x[y0,y1). Bounds must be
// within the image; callers clamp first.
func (t *IntegralImage) SumRect(x0, y0, x1, y1 int) float64 {
	w1 := t.W + 1
	return t.sums[y1*w1+x1] - t.sums[y0*w1+x1] - t.sums[y1*w1+x0] + t.sums[y0*w1+x0]
}

// ContinuousAt returns the integral of the source over [0,x)x[0,y) at
// fractional coordinates, treating each pixel as a unit square of constant
// value. Between lattice points the integral is bilinear in the fractional
// parts plus a corner term, all recoverable from the summed-area table in
// O(1). Coordinates are clamped to [0, W]x[0, H].
func (t *IntegralImage) ContinuousAt(x, y float64) float64 {
	if x > float64(t.W) {
		x = float64(t.W)
	}
	if y > float64(t.H) {
		y = float64(t.H)
	}
	w1 := t.W + 1
	ix, iy := int(x), int(y)
	fx, fy := x-float64(ix), y-float64(iy)
	s := t.sums
	base := s[iy*w1+ix]
	v := base
	if fx > 0 {
		v += fx * (s[iy*w1+ix+1] - base)
	}
	if fy > 0 {
		v += fy * (s[(iy+1)*w1+ix] - base)
	}
	if fx > 0 && fy > 0 {
		v += fx * fy * (s[(iy+1)*w1+ix+1] - s[iy*w1+ix+1] - s[(iy+1)*w1+ix] + base)
	}
	return v
}

// DownsampleIntegralInto computes the box-filter downsample of a region of
// the summed-area table's source directly from the table: every
// destination pixel reads its continuous window integral in O(1), so the
// cost is O(dst) regardless of the region's native size — where
// DownsampleInto pays O(region) to integrate the cropped pixels first.
// The box windows are exactly those DownsampleInto would use over the
// cropped region, so values agree up to floating-point association (the
// table accumulates sums over the full source, not the crop). The table
// must cover region, and dst must not exceed the region on either axis.
func DownsampleIntegralInto(dst *Image, t *IntegralImage, region Rect) {
	w, h := dst.W, dst.H
	rw, rh := region.W(), region.H()
	if w <= 0 || h <= 0 || w > rw || h > rh {
		panic("raster: DownsampleIntegralInto size mismatch")
	}

	// Continuous window boundaries along each axis, in source coordinates.
	xs := getF64(w + 1)
	defer putF64(xs)
	ratioX := float64(rw) / float64(w)
	for d := 0; d <= w; d++ {
		xs[d] = float64(region.MinX) + float64(d)*ratioX
	}
	invX := getF64(w)
	defer putF64(invX)
	for d := 0; d < w; d++ {
		invX[d] = 1 / (xs[d+1] - xs[d])
	}
	ys := getF64(h + 1)
	defer putF64(ys)
	ratioY := float64(rh) / float64(h)
	for d := 0; d <= h; d++ {
		ys[d] = float64(region.MinY) + float64(d)*ratioY
	}

	// March boundary rows of the continuous integral; adjacent destination
	// rows share one, so each is evaluated once.
	f0 := getF64(w + 1)
	defer putF64(f0)
	f1 := getF64(w + 1)
	defer putF64(f1)
	for d := 0; d <= w; d++ {
		f0[d] = t.ContinuousAt(xs[d], ys[0])
	}
	for dy := 0; dy < h; dy++ {
		y1 := ys[dy+1]
		for d := 0; d <= w; d++ {
			f1[d] = t.ContinuousAt(xs[d], y1)
		}
		invY := 1 / (y1 - ys[dy])
		out := dst.Pix[dy*w : (dy+1)*w]
		for dx := range out {
			integral := (f1[dx+1] - f1[dx]) - (f0[dx+1] - f0[dx])
			out[dx] = float32(integral * invX[dx] * invY)
		}
		f0, f1 = f1, f0
	}
}
