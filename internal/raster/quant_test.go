package raster

import (
	"fmt"
	"testing"
)

// fillPseudo fills img with a deterministic pseudo-random texture.
func fillPseudo(img *Image, seed uint64) {
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			h := pixelHash(seed, x, y)
			img.Pix[y*img.W+x] = float32(h&0xffff) / 0xffff
		}
	}
}

// plane8From quantizes a fresh Plane8 from img.
func plane8From(img *Image) *Plane8 {
	p := NewPlane8(img.W, img.H)
	p.FromImage(img)
	return p
}

// maxAbsDiff8 returns the largest |a-b| over two equal-size planes.
func maxAbsDiff8(t *testing.T, a, b *Plane8) int {
	t.Helper()
	if a.W != b.W || a.H != b.H {
		t.Fatalf("size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	worst := 0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// quantRoundTripTolerance is the admitted LSB deviation between a quantized
// kernel and quantizing its float oracle's output: 1 LSB from the Q8/Q16
// fixed-point boundary terms plus 1 LSB of round-to-nearest disagreement.
const quantRoundTripTolerance = 2

// TestQuantDownsampleMatchesFloatOracle pins DownsampleInto8 to the naive
// float box-filter oracle within tolerance, over a grid of shapes covering
// exact-multiple, fractional, and extreme downsample ratios.
func TestQuantDownsampleMatchesFloatOracle(t *testing.T) {
	cases := []struct{ sw, sh, dw, dh int }{
		{64, 64, 32, 32},
		{64, 64, 17, 23},
		{97, 53, 31, 29},
		{640, 640, 608, 608},
		{640, 640, 64, 64},
		{33, 7, 3, 3},
		{16, 16, 16, 16},
	}
	for ci, c := range cases {
		src := New(c.sw, c.sh)
		fillPseudo(src, 0x5eed+uint64(ci))
		src8 := plane8From(src)

		got := NewPlane8(c.dw, c.dh)
		DownsampleInto8(got, src8)

		// Oracle: the naive float kernel on the dequantized source, then
		// quantized — the same input the integer kernel saw.
		deq := New(c.sw, c.sh)
		src8.ToImage(deq)
		ref := New(c.dw, c.dh)
		downsampleNaiveInto(ref, deq)
		want := plane8From(ref)

		if d := maxAbsDiff8(t, got, want); d > quantRoundTripTolerance {
			t.Errorf("case %d (%dx%d -> %dx%d): max deviation %d LSB > %d",
				ci, c.sw, c.sh, c.dw, c.dh, d, quantRoundTripTolerance)
		}
	}
}

// TestQuantDownsampleUpsamplePath pins the bilinear fallback shape handling.
func TestQuantDownsampleUpsamplePath(t *testing.T) {
	src := New(32, 32)
	fillPseudo(src, 0xabc)
	src8 := plane8From(src)
	got := NewPlane8(48, 48)
	DownsampleInto8(got, src8)

	deq := New(32, 32)
	src8.ToImage(deq)
	ref := New(48, 48)
	bilinearInto(ref, deq)
	want := plane8From(ref)
	if d := maxAbsDiff8(t, got, want); d > quantRoundTripTolerance {
		t.Errorf("upsample path: max deviation %d LSB", d)
	}
}

// TestQuantBoxBlurMatchesFloatOracle pins BoxBlurInto8 to the naive float
// blur oracle within tolerance.
func TestQuantBoxBlurMatchesFloatOracle(t *testing.T) {
	for _, r := range []int{0, 1, 2, 5} {
		for _, size := range []struct{ w, h int }{{31, 17}, {64, 64}, {129, 40}} {
			src := New(size.w, size.h)
			fillPseudo(src, uint64(r*1000+size.w))
			src8 := plane8From(src)

			got := NewPlane8(size.w, size.h)
			BoxBlurInto8(got, src8, r)

			deq := New(size.w, size.h)
			src8.ToImage(deq)
			ref := New(size.w, size.h)
			boxBlurNaiveInto(ref, deq, r)
			want := plane8From(ref)

			if d := maxAbsDiff8(t, got, want); d > quantRoundTripTolerance {
				t.Errorf("r=%d %dx%d: max deviation %d LSB", r, size.w, size.h, d)
			}
		}
	}
}

// TestQuantAddNoiseMatchesFloat pins the fixed-point Irwin–Hall noise to the
// float kernel within tolerance, across the sigma range the detectors use.
func TestQuantAddNoiseMatchesFloat(t *testing.T) {
	for _, sigma := range []float32{0.004, 0.015, 0.045, 0.2} {
		src := New(80, 60)
		fillPseudo(src, uint64(sigma*1e6))
		got := plane8From(src)
		got.AddNoise8(0xfeed, sigma)

		deq := New(80, 60)
		plane8From(src).ToImage(deq)
		deq.AddNoise(0xfeed, sigma)
		want := plane8From(deq)

		if d := maxAbsDiff8(t, got, want); d > quantRoundTripTolerance {
			t.Errorf("sigma=%v: max deviation %d LSB", sigma, d)
		}
	}
}

// TestQuantKernelsDeterministicAcrossWorkers pins that the quantized
// kernels produce bit-identical bytes at parallelism 1, 2, 4 and 8 — the
// same fixed-row-block contract the float kernels carry.
func TestQuantKernelsDeterministicAcrossWorkers(t *testing.T) {
	prev := int(kernelParallelism.Load())
	defer SetParallelism(prev)

	src := New(512, 384)
	fillPseudo(src, 0xd17e)
	src8 := plane8From(src)

	type result struct{ down, blur, noise []uint8 }
	run := func() result {
		down := NewPlane8(160, 120)
		DownsampleInto8(down, src8)
		blur := NewPlane8(512, 384)
		BoxBlurInto8(blur, src8, 2)
		noise := NewPlane8(512, 384)
		copy(noise.Pix, src8.Pix)
		noise.AddNoise8(0xcafe, 0.05)
		return result{down.Pix, blur.Pix, noise.Pix}
	}

	SetParallelism(1)
	ref := run()
	for _, workers := range []int{2, 4, 8} {
		SetParallelism(workers)
		got := run()
		for name, pair := range map[string][2][]uint8{
			"downsample": {ref.down, got.down},
			"boxblur":    {ref.blur, got.blur},
			"addnoise":   {ref.noise, got.noise},
		} {
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("%s: byte %d differs at parallelism %d", name, i, workers)
				}
			}
		}
	}
}

// TestScratch8PoolRoundTrip pins the pooled plane contract: reslicing, size
// panics, and nil safety.
func TestScratch8PoolRoundTrip(t *testing.T) {
	p := GetScratch8(7, 5)
	if p.W != 7 || p.H != 5 || len(p.Pix) != 35 {
		t.Fatalf("GetScratch8 shape: %dx%d len %d", p.W, p.H, len(p.Pix))
	}
	PutScratch8(p)
	PutScratch8(nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("GetScratch8(0, 3) did not panic")
		}
	}()
	GetScratch8(0, 3)
}

func benchSource8(w, h int) *Plane8 {
	img := New(w, h)
	fillPseudo(img, 0xbe2c4)
	return plane8From(img)
}

func BenchmarkKernelDownsample8(b *testing.B) {
	for _, c := range []struct{ sw, dw int }{{640, 608}, {640, 160}} {
		b.Run(fmt.Sprintf("%dto%d", c.sw, c.dw), func(b *testing.B) {
			src := benchSource8(c.sw, c.sw)
			dst := NewPlane8(c.dw, c.dw)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DownsampleInto8(dst, src)
			}
		})
	}
}

func BenchmarkKernelBoxBlur8(b *testing.B) {
	src := benchSource8(640, 640)
	dst := NewPlane8(640, 640)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoxBlurInto8(dst, src, 2)
	}
}

func BenchmarkKernelAddNoise8(b *testing.B) {
	src := benchSource8(640, 640)
	work := NewPlane8(640, 640)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work.Pix, src.Pix)
		work.AddNoise8(0x9e, 0.045)
	}
}
