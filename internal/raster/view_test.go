package raster

import (
	"math"
	"math/rand"
	"testing"
)

// TestMotionBlurMatchesNaive property-tests the sliding-window horizontal
// motion blur against the direct per-pixel oracle, over asymmetric
// reaches (even kernel lengths split left/right unevenly) and offsets
// (region rendering blurs a destination strip against a wider padded
// source).
func TestMotionBlurMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	type cfg struct{ sw, sh, dw, left, right, offX int }
	cases := []cfg{
		{1, 1, 1, 0, 0, 0},
		{9, 4, 9, 3, 3, 0},
		{9, 4, 9, 3, 4, 0},    // even length: asymmetric reach
		{33, 7, 20, 4, 5, 6},  // strip with offset
		{64, 16, 64, 15, 15, 0},
		{5, 3, 5, 15, 16, 0},  // reach wider than the image
	}
	for i := 0; i < 10; i++ {
		sw := 1 + rng.Intn(90)
		dw := 1 + rng.Intn(sw)
		left := rng.Intn(9)
		cases = append(cases, cfg{sw, 1 + rng.Intn(40), dw, left, rng.Intn(9), rng.Intn(sw - dw + 1)})
	}
	for _, c := range cases {
		src := randomImage(rng, c.sw, c.sh)
		fast := New(c.dw, c.sh)
		naive := New(c.dw, c.sh)
		MotionBlurHInto(fast, src, c.left, c.right, c.offX)
		motionBlurHNaiveInto(naive, src, c.left, c.right, c.offX)
		checkFinite(t, fast, "motion blur fast")
		if d := maxAbsDiff(fast, naive); d > 1e-5 {
			t.Errorf("motion blur %dx%d dw=%d L=%d R=%d off=%d: max diff %g > 1e-5",
				c.sw, c.sh, c.dw, c.left, c.right, c.offX, d)
		}
	}
}

// TestMotionBlurIdentity: zero reach is a copy.
func TestMotionBlurIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomImage(rng, 23, 11)
	dst := New(23, 11)
	MotionBlurHInto(dst, src, 0, 0, 0)
	if d := maxAbsDiff(dst, src); d != 0 {
		t.Fatalf("identity blur changed pixels: max diff %g", d)
	}
}

// TestQuantizeLevelsMatchesNaive property-tests the in-place quantizer
// against its pointwise oracle across level counts, including values
// outside [0,1] (the quantizer also clamps).
func TestQuantizeLevelsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, levels := range []int{2, 3, 16, 32, 255, 256} {
		src := randomImage(rng, 41, 19)
		// Push some samples outside [0,1] to exercise the clamp.
		for i := range src.Pix {
			if i%7 == 0 {
				src.Pix[i] = src.Pix[i]*3 - 1
			}
		}
		fast := src.Clone()
		naive := src.Clone()
		QuantizeLevels(fast, levels)
		quantizeLevelsNaive(naive, levels)
		checkFinite(t, fast, "quantize fast")
		if d := maxAbsDiff(fast, naive); d > 1e-5 {
			t.Errorf("quantize levels=%d: max diff %g > 1e-5", levels, d)
		}
		// Quantized values land exactly on the level grid.
		scale := float32(levels - 1)
		for i, v := range fast.Pix {
			q := v * scale
			if math.Abs(float64(q-float32(math.Round(float64(q))))) > 1e-4 {
				t.Fatalf("levels=%d: pixel %d value %g off-grid", levels, i, v)
			}
		}
	}
}

// TestViewKernelsDeterministicAcrossWorkers pins the bit-identical
// contract for the new view kernels at Parallelism 1, 2, 4 and 8.
func TestViewKernelsDeterministicAcrossWorkers(t *testing.T) {
	prev := Parallelism()
	t.Cleanup(func() { SetParallelism(prev) })

	rng := rand.New(rand.NewSource(31))
	src := randomImage(rng, 320, 180)

	run := func(workers int) (*Image, *Image) {
		SetParallelism(workers)
		blur := New(300, 180)
		MotionBlurHInto(blur, src, 5, 6, 10)
		quant := src.Clone()
		QuantizeLevels(quant, 32)
		return blur, quant
	}

	b1, q1 := run(1)
	for _, workers := range []int{2, 4, 8} {
		bn, qn := run(workers)
		for name, pair := range map[string][2]*Image{"motionblur": {b1, bn}, "quantize": {q1, qn}} {
			a, b := pair[0], pair[1]
			for i := range a.Pix {
				if math.Float32bits(a.Pix[i]) != math.Float32bits(b.Pix[i]) {
					t.Fatalf("%s: pixel %d differs between 1 and %d workers", name, i, workers)
				}
			}
		}
	}
}

// TestMotionBlurPanics: malformed geometry is a programming error, not a
// rendering mode.
func TestMotionBlurPanics(t *testing.T) {
	src := New(8, 4)
	for name, fn := range map[string]func(){
		"negative left":   func() { MotionBlurHInto(New(8, 4), src, -1, 0, 0) },
		"negative right":  func() { MotionBlurHInto(New(8, 4), src, 0, -1, 0) },
		"height mismatch": func() { MotionBlurHInto(New(8, 3), src, 1, 1, 0) },
		"levels<2":        func() { QuantizeLevels(src, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
