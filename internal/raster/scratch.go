package raster

import "sync"

// Scratch-image pooling for the detection hot path. DetectFrameFull and
// the patch path downsample, noise and difference one or two images per
// frame evaluation; at profile-generation scale that is millions of
// short-lived rasters, all dead by the time the frame's detections are
// counted. A sync.Pool of resizable images removes that allocation traffic
// without changing any pixel math: a pooled image is resliced (never
// zeroed), so it is only handed to code that overwrites every sample —
// which DownsampleInto does by construction.

var scratchPool = sync.Pool{New: func() any { return &Image{} }}

// GetScratch returns a w x h image from the pool. The pixel contents are
// UNDEFINED — callers must overwrite every sample (e.g. via DownsampleInto
// or Fill) before reading. Release with PutScratch when done; the image
// must not be retained or read after release.
func GetScratch(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("raster: GetScratch with non-positive size")
	}
	img := scratchPool.Get().(*Image)
	img.W, img.H = w, h
	if cap(img.Pix) < w*h {
		img.Pix = make([]float32, w*h)
	} else {
		img.Pix = img.Pix[:w*h]
	}
	return img
}

// PutScratch returns an image obtained from GetScratch to the pool. It is
// safe (a no-op) on nil.
func PutScratch(img *Image) {
	if img == nil {
		return
	}
	scratchPool.Put(img)
}
