// Package raster implements the grayscale image substrate that the
// simulated detectors operate on. Frames in this repository are not mock
// objects: scenes are rendered to pixel grids, degraded by real box-filter
// downsampling and additive noise, and then detected by an actual
// image-processing pipeline (thresholding, connected components). That is
// what makes the paper's non-random interventions — reduced resolution in
// particular — produce genuinely systematic, direction-biased detector
// error instead of hand-tuned error curves.
package raster

import (
	"fmt"
	"math"
)

// Image is a dense grayscale image with float32 samples in [0, 1].
// Pixels are stored row-major; (0,0) is the top-left corner.
type Image struct {
	W, H int
	Pix  []float32
}

// New allocates a zeroed (black) image of the given size. It panics on
// non-positive dimensions.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("raster: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Pix: make([]float32, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// At returns the sample at (x, y). Out-of-bounds reads return 0, which
// keeps filter kernels simple at image edges.
func (m *Image) At(x, y int) float32 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return 0
	}
	return m.Pix[y*m.W+x]
}

// Set writes the sample at (x, y), clamping the value into [0, 1].
// Out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, v float32) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = clamp01(v)
}

// Add adds v to the sample at (x, y), clamping into [0, 1].
func (m *Image) Add(x, y int, v float32) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = clamp01(m.Pix[y*m.W+x] + v)
}

// Fill sets every sample to v.
func (m *Image) Fill(v float32) {
	v = clamp01(v)
	for i := range m.Pix {
		m.Pix[i] = v
	}
}

// Mean returns the average sample value.
func (m *Image) Mean() float64 {
	var sum float64
	for _, v := range m.Pix {
		sum += float64(v)
	}
	return sum / float64(len(m.Pix))
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Rect is an axis-aligned integer rectangle. Min is inclusive, Max is
// exclusive, matching image.Rectangle conventions.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// RectWH constructs a rectangle from origin and size.
func RectWH(x, y, w, h int) Rect {
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// W returns the rectangle width.
func (r Rect) W() int { return r.MaxX - r.MinX }

// H returns the rectangle height.
func (r Rect) H() int { return r.MaxY - r.MinY }

// Area returns the rectangle area, zero for empty rectangles.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.MinX >= r.MaxX || r.MinY >= r.MaxY }

// Intersect returns the intersection of two rectangles.
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		MinX: max(r.MinX, o.MinX),
		MinY: max(r.MinY, o.MinY),
		MaxX: min(r.MaxX, o.MaxX),
		MaxY: min(r.MaxY, o.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both rectangles.
// Empty operands are ignored.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		MinX: min(r.MinX, o.MinX),
		MinY: min(r.MinY, o.MinY),
		MaxX: max(r.MaxX, o.MaxX),
		MaxY: max(r.MaxY, o.MaxY),
	}
}

// Contains reports whether point (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// IoU returns the intersection-over-union of two rectangles, the overlap
// measure used by the detector's non-maximum suppression.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	return float64(inter) / float64(union)
}

// Scale returns the rectangle scaled by s around the origin, rounding
// outward so that a scaled object never loses its covered pixels entirely.
func (r Rect) Scale(s float64) Rect {
	return Rect{
		MinX: int(math.Floor(float64(r.MinX) * s)),
		MinY: int(math.Floor(float64(r.MinY) * s)),
		MaxX: int(math.Ceil(float64(r.MaxX) * s)),
		MaxY: int(math.Ceil(float64(r.MaxY) * s)),
	}
}

// Center returns the rectangle's center point in continuous coordinates.
func (r Rect) Center() (float64, float64) {
	return float64(r.MinX+r.MaxX) / 2, float64(r.MinY+r.MaxY) / 2
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
