package raster

import (
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks (the `make bench-kernels` target): fast kernels
// against their retained naive oracles at a representative full-frame size,
// so the asymptotic win (sliding window / prefix sum vs window scans) is
// visible in ns/op and the pooling win in B/op.

func benchImage(w, h int) *Image {
	rng := rand.New(rand.NewSource(1))
	img := New(w, h)
	for i := range img.Pix {
		img.Pix[i] = rng.Float32()
	}
	return img
}

func BenchmarkKernelBoxBlurFast(b *testing.B) {
	src := benchImage(608, 608)
	dst := New(608, 608)
	b.SetBytes(int64(len(src.Pix)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoxBlurInto(dst, src, 15)
	}
}

func BenchmarkKernelBoxBlurNaive(b *testing.B) {
	src := benchImage(608, 608)
	dst := New(608, 608)
	b.SetBytes(int64(len(src.Pix)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxBlurNaiveInto(dst, src, 15)
	}
}

func BenchmarkKernelDownsampleFast(b *testing.B) {
	src := benchImage(1280, 720)
	dst := New(320, 320)
	b.SetBytes(int64(len(src.Pix)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DownsampleInto(dst, src)
	}
}

func BenchmarkKernelDownsampleNaive(b *testing.B) {
	src := benchImage(1280, 720)
	dst := New(320, 320)
	b.SetBytes(int64(len(src.Pix)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		downsampleNaiveInto(dst, src)
	}
}

func BenchmarkKernelBilinearUpsample(b *testing.B) {
	src := benchImage(320, 320)
	dst := New(608, 608)
	b.SetBytes(int64(len(dst.Pix)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bilinearInto(dst, src)
	}
}

func BenchmarkKernelAddNoise(b *testing.B) {
	img := benchImage(608, 608)
	b.SetBytes(int64(len(img.Pix)) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.AddNoise(uint64(i), 0.02)
	}
}
