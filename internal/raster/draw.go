package raster

import "math"

// This file provides the primitive renderers used by the scene simulator.
// Objects are drawn as filled shapes with soft (anti-aliased) edges so that
// downsampling produces realistic partial-coverage boundary pixels instead
// of hard binary masks.

// FillRect paints a solid axis-aligned rectangle with intensity v.
func (m *Image) FillRect(r Rect, v float32) {
	r = r.Intersect(RectWH(0, 0, m.W, m.H))
	v = clamp01(v)
	for y := r.MinY; y < r.MaxY; y++ {
		row := m.Pix[y*m.W+r.MinX : y*m.W+r.MaxX]
		for i := range row {
			row[i] = v
		}
	}
}

// BlendRect alpha-blends a rectangle of intensity v over the existing
// pixels with opacity alpha in [0, 1].
func (m *Image) BlendRect(r Rect, v, alpha float32) {
	r = r.Intersect(RectWH(0, 0, m.W, m.H))
	v = clamp01(v)
	for y := r.MinY; y < r.MaxY; y++ {
		row := m.Pix[y*m.W+r.MinX : y*m.W+r.MaxX]
		for i, old := range row {
			row[i] = clamp01(old + (v-old)*alpha)
		}
	}
}

// FillEllipse paints a filled ellipse inscribed in r with intensity v and a
// one-pixel soft edge.
func (m *Image) FillEllipse(r Rect, v float32) {
	if r.Empty() {
		return
	}
	cx, cy := r.Center()
	rx := float64(r.W()) / 2
	ry := float64(r.H()) / 2
	if rx <= 0 || ry <= 0 {
		return
	}
	clip := r.Intersect(RectWH(0, 0, m.W, m.H))
	for y := clip.MinY; y < clip.MaxY; y++ {
		for x := clip.MinX; x < clip.MaxX; x++ {
			dx := (float64(x) + 0.5 - cx) / rx
			dy := (float64(y) + 0.5 - cy) / ry
			d := math.Sqrt(dx*dx + dy*dy)
			switch {
			case d <= 0.92:
				m.Set(x, y, v)
			case d <= 1.0:
				// Soft edge: linear falloff blended over background.
				t := float32((1.0 - d) / 0.08)
				old := m.At(x, y)
				m.Set(x, y, old+(v-old)*t)
			}
		}
	}
}

// GradientV paints a vertical linear gradient from top intensity to bottom
// intensity across the whole image. Scene backgrounds use this to model
// road-to-sky luminance ramps.
func (m *Image) GradientV(top, bottom float32) {
	for y := 0; y < m.H; y++ {
		t := float32(y) / float32(m.H-1+1)
		v := clamp01(top + (bottom-top)*t)
		row := y * m.W
		for x := 0; x < m.W; x++ {
			m.Pix[row+x] = v
		}
	}
}

// Texture overlays a deterministic pseudo-random texture with amplitude
// amp, keyed by seed. The texture is a fixed function of pixel coordinates
// so the same background renders identically every frame — exactly like a
// static camera looking at static clutter.
func (m *Image) Texture(seed uint64, amp float32) {
	for y := 0; y < m.H; y++ {
		row := y * m.W
		for x := 0; x < m.W; x++ {
			h := pixelHash(seed, x, y)
			// Map hash to [-1, 1).
			u := float32(int64(h>>11))/float32(1<<52) - 1
			m.Pix[row+x] = clamp01(m.Pix[row+x] + u*amp)
		}
	}
}

// AddNoise adds deterministic per-pixel noise with standard deviation
// sigma, keyed by seed. Approximates sensor noise; night scenes use larger
// sigma. Uses a sum of three uniforms (Irwin–Hall) as a cheap, bounded
// near-Gaussian.
func (m *Image) AddNoise(seed uint64, sigma float32) {
	if sigma <= 0 {
		return
	}
	// Irwin-Hall with k=3 uniforms in [-0.5,0.5] has sd = 0.5; rescale.
	// Dividing by 2^21 equals multiplying by its exact reciprocal, so the
	// multiply form below is bit-identical to the historical division.
	const invU = float32(1) / float32(1<<21)
	scale := sigma / 0.5
	for y := 0; y < m.H; y++ {
		row := m.Pix[y*m.W : (y+1)*m.W]
		for x := range row {
			h := pixelHash(seed, x, y)
			u1 := float32(h&0x1fffff)*invU - 0.5
			u2 := float32((h>>21)&0x1fffff)*invU - 0.5
			u3 := float32((h>>42)&0x1fffff)*invU - 0.5
			row[x] = clamp01(row[x] + (u1+u2+u3)*scale)
		}
	}
}

// pixelHash mixes a seed with pixel coordinates into 64 well-distributed
// bits. It is the raster-side analogue of stats.Stream.Child.
func pixelHash(seed uint64, x, y int) uint64 {
	z := seed ^ (uint64(uint32(x)) << 32) ^ uint64(uint32(y))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
