package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// JobState is a generation job's lifecycle position. The state machine is
// linear: queued -> running -> {done | failed | canceled}. Jobs never
// retry in place; a failed or canceled key is retried by the next POST
// that misses the store.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobCanceled marks a job stopped before producing its artifact: a
	// client DELETEd it, or the job deadline fired. Distinct from failed —
	// nothing went wrong with the generation itself.
	JobCanceled JobState = "canceled"
)

// terminal reports whether a state is final.
func terminal(s JobState) bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one asynchronous profile generation. All mutable fields are
// guarded by the owning jobSet's mutex; done is closed exactly once on
// entering a terminal state, so waiters can select on it.
type Job struct {
	ID  string
	Key string
	// Query is the canonical query string, for operators reading job
	// listings.
	Query string
	// req is the full request the worker replays.
	req GenRequest

	state     JobState
	err       string
	created   time.Time
	started   time.Time
	finished  time.Time
	coalesced int // requests that attached to this job beyond the first

	// cancel stops the running generation's context; set by start, nil
	// while queued (a queued job cancels by state transition alone).
	cancel context.CancelFunc

	done chan struct{}
}

// JobStatus is the wire form of a job, snapshotted under the set lock.
type JobStatus struct {
	ID        string    `json:"id"`
	Key       string    `json:"key"`
	Query     string    `json:"query"`
	State     JobState  `json:"state"`
	Error     string    `json:"error,omitempty"`
	Coalesced int       `json:"coalesced"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
}

// jobSet tracks jobs by id and coalesces active ones by key. Terminal
// jobs stay queryable until the bounded history evicts them.
type jobSet struct {
	mu      sync.Mutex
	nextID  int
	byID    map[string]*Job
	history []string // insertion-ordered ids, for eviction
	active  map[string]*Job
	// historyLimit bounds byID; oldest terminal jobs are evicted first.
	historyLimit int
	// idPrefix namespaces generated ids per node (Config.JobIDPrefix).
	idPrefix string
}

func newJobSet(historyLimit int, idPrefix string) *jobSet {
	if historyLimit <= 0 {
		historyLimit = 1024
	}
	return &jobSet{
		byID:         make(map[string]*Job),
		active:       make(map[string]*Job),
		historyLimit: historyLimit,
		idPrefix:     idPrefix,
	}
}

// getOrCreate returns the active job for key, or registers a new one
// built from req. created reports whether the caller owns enqueueing it;
// when false the request coalesced onto in-flight work.
func (js *jobSet) getOrCreate(key, query string, req GenRequest, now time.Time) (job *Job, created bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if job, ok := js.active[key]; ok {
		job.coalesced++
		return job, false
	}
	js.nextID++
	job = &Job{
		ID:      js.idPrefix + jobID(js.nextID),
		Key:     key,
		Query:   query,
		req:     req,
		state:   JobQueued,
		created: now,
		done:    make(chan struct{}),
	}
	js.active[key] = job
	js.byID[job.ID] = job
	js.history = append(js.history, job.ID)
	js.evictLocked()
	return job, true
}

// jobID renders a stable, log-friendly id.
func jobID(n int) string {
	const digits = "0123456789"
	buf := []byte("job-000000")
	for i := len(buf) - 1; n > 0 && i >= 4; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf)
}

// evictLocked drops the oldest terminal jobs beyond the history limit.
// Active jobs are never evicted.
func (js *jobSet) evictLocked() {
	for len(js.byID) > js.historyLimit && len(js.history) > 0 {
		evicted := false
		for i, id := range js.history {
			job := js.byID[id]
			if job == nil {
				js.history = append(js.history[:i], js.history[i+1:]...)
				evicted = true
				break
			}
			if terminal(job.state) {
				delete(js.byID, id)
				js.history = append(js.history[:i], js.history[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live is active; grow past the limit
		}
	}
}

// abandon removes a job that never made it into the queue (backpressure
// or drain rejected it) so the key can be retried immediately.
func (js *jobSet) abandon(job *Job) {
	js.mu.Lock()
	defer js.mu.Unlock()
	delete(js.active, job.Key)
	delete(js.byID, job.ID)
	for i, id := range js.history {
		if id == job.ID {
			js.history = append(js.history[:i], js.history[i+1:]...)
			break
		}
	}
}

// start transitions a job to running and arms its cancel func. It
// returns false when the job was canceled while still queued — the worker
// must skip it without running the generation (the cancel path already
// finalized the job).
func (js *jobSet) start(job *Job, now time.Time, cancel context.CancelFunc) bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	if job.state != JobQueued {
		return false
	}
	job.state = JobRunning
	job.started = now
	job.cancel = cancel
	return true
}

// cancel stops a job: a queued job transitions straight to canceled, a
// running one has its context canceled (the worker's finish maps the
// resulting context error to canceled). Terminal jobs are left alone, so
// DELETE is idempotent. It reports whether this call initiated a
// cancellation.
func (js *jobSet) cancel(job *Job, now time.Time) bool {
	js.mu.Lock()
	switch job.state {
	case JobQueued:
		job.state = JobCanceled
		job.err = context.Canceled.Error()
		job.finished = now
		delete(js.active, job.Key)
		js.mu.Unlock()
		close(job.done)
		return true
	case JobRunning:
		cancel := job.cancel
		js.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		js.mu.Unlock()
		return false
	}
}

// finish transitions a job to its terminal state, releases the key for
// future requests, and wakes every waiter. Context cancellation and
// deadline expiry finish as canceled, not failed: the generation itself
// did nothing wrong, and operators alert on failure counts.
func (js *jobSet) finish(job *Job, genErr error, now time.Time) {
	js.mu.Lock()
	switch {
	case genErr == nil:
		job.state = JobDone
	case errors.Is(genErr, context.Canceled) || errors.Is(genErr, context.DeadlineExceeded):
		job.state = JobCanceled
		job.err = genErr.Error()
	default:
		job.state = JobFailed
		job.err = genErr.Error()
	}
	job.finished = now
	delete(js.active, job.Key)
	js.mu.Unlock()
	close(job.done)
}

// get returns the job with the given id.
func (js *jobSet) get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	job, ok := js.byID[id]
	return job, ok
}

// status snapshots a job under the lock.
func (js *jobSet) status(job *Job) JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	return JobStatus{
		ID:        job.ID,
		Key:       job.Key,
		Query:     job.Query,
		State:     job.state,
		Error:     job.err,
		Coalesced: job.coalesced,
		Created:   job.created,
		Started:   job.started,
		Finished:  job.finished,
	}
}

// counts reports how many tracked jobs are in each state.
func (js *jobSet) counts() (queued, running, done, failed, canceled int) {
	js.mu.Lock()
	defer js.mu.Unlock()
	for _, job := range js.byID {
		switch job.state {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		case JobCanceled:
			canceled++
		}
	}
	return
}
