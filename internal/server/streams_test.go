package server

import (
	"bufio"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeMetrics fetches /metrics and parses the untyped samples.
func scrapeMetrics(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		name, val, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", sc.Text(), err)
		}
		samples[name] = n
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestStreamLifecycleAndMetrics(t *testing.T) {
	// End-to-end through the daemon: POST a stream, watch it ingest the
	// small corpus in tumbling windows, and check the /metrics gauges the
	// satellite requires (frames, window lag, drift events). The tiny
	// drift threshold forces every window to raise a drift event —
	// within-corpus windows diverge well above 0.01 from the corpus-wide
	// histogram (see DESIGN.md on threshold calibration) — so the drift
	// counter provably moves.
	_, ts, _ := newTestServer(t, &fakeGenerator{}, nil)
	client := &Client{BaseURL: ts.URL, PollInterval: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	status, err := client.StartStream(ctx, StreamRequest{
		Dataset:        "small",
		Window:         100,
		Sample:         0.1,
		Resolution:     160,
		DriftThreshold: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobRunning {
		t.Fatalf("fresh stream state = %q, want running", status.State)
	}
	if !strings.HasPrefix(status.ID, "stream-") {
		t.Fatalf("stream id %q", status.ID)
	}

	final, err := client.AwaitStream(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("final state = %q (%s), want done", final.State, final.Error)
	}
	if got, want := final.Stream.Windows, 12; got != want {
		t.Fatalf("windows completed = %d, want %d (1200 frames / window 100)", got, want)
	}
	if final.Stream.Frames == 0 {
		t.Fatal("stream folded no frames")
	}
	if final.Stream.Drifts != 12 {
		t.Fatalf("drift events = %d, want 12 (threshold 0.01 flags every window)", final.Stream.Drifts)
	}
	if final.Stream.LastWindow == nil || final.Stream.LastWindow.Estimate.ErrBound <= 0 {
		t.Fatalf("last window missing its any-time bound: %+v", final.Stream.LastWindow)
	}
	if final.Stream.LastDrift == nil || final.Stream.LastDrift.Divergence <= 0.01 {
		t.Fatalf("last drift event missing: %+v", final.Stream.LastDrift)
	}

	m := scrapeMetrics(t, ts.URL)
	if m["smokescreend_streams_total"] < 1 {
		t.Fatalf("smokescreend_streams_total = %d", m["smokescreend_streams_total"])
	}
	if m["smokescreend_streams_active"] != 0 {
		t.Fatalf("smokescreend_streams_active = %d after stream finished", m["smokescreend_streams_active"])
	}
	if m["smokescreend_stream_frames_total"] < int64(final.Stream.Frames) {
		t.Fatalf("smokescreend_stream_frames_total = %d < %d", m["smokescreend_stream_frames_total"], final.Stream.Frames)
	}
	if m["smokescreend_stream_windows_total"] < 12 {
		t.Fatalf("smokescreend_stream_windows_total = %d", m["smokescreend_stream_windows_total"])
	}
	if m["smokescreend_stream_drift_events_total"] < 12 {
		t.Fatalf("smokescreend_stream_drift_events_total = %d", m["smokescreend_stream_drift_events_total"])
	}
	if _, ok := m["smokescreend_stream_window_lag"]; !ok {
		t.Fatal("smokescreend_stream_window_lag gauge missing")
	}

	// The status endpoint answers for terminal streams too.
	again, err := client.Stream(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != JobDone {
		t.Fatalf("terminal stream re-read state = %q", again.State)
	}
}

func TestStreamCancelTearsDownPromptly(t *testing.T) {
	// DELETE mid-stream: the looping camera would run 100k corpus passes
	// (effectively unbounded — the stream cannot reach "done" naturally
	// within the test window, even fully cache-warm on a loaded machine);
	// cancellation after the first completed window must stop it and
	// report canceled, with the window count frozen (no partial window
	// flushed by teardown).
	_, ts, _ := newTestServer(t, &fakeGenerator{}, nil)
	client := &Client{BaseURL: ts.URL, PollInterval: 10 * time.Millisecond}
	// Generous deadline: first-window latency is usually sub-second but
	// swings with GC pressure and machine load.
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	status, err := client.StartStream(ctx, StreamRequest{
		Dataset:      "small",
		Window:       150,
		Sample:       0.1,
		Resolution:   160,
		Loops:        100000,
		DisableDrift: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := client.Stream(ctx, status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			t.Fatalf("stream reached %q before its first window", st.State)
		}
		if st.Stream.Windows >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := client.CancelStream(ctx, status.ID); err != nil {
		t.Fatal(err)
	}
	final, err := client.AwaitStream(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCanceled {
		t.Fatalf("state after cancel = %q (%s)", final.State, final.Error)
	}
	if !final.Stream.Done {
		t.Fatal("receiver not torn down after cancel")
	}
	if final.Stream.Windows >= 100000*1200/150 {
		t.Fatalf("cancel did not interrupt the stream: %d windows", final.Stream.Windows)
	}
}

func TestStreamRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, &fakeGenerator{}, nil)
	client := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	cases := []struct {
		name string
		req  StreamRequest
	}{
		{"missing dataset", StreamRequest{Window: 100}},
		{"missing window", StreamRequest{Dataset: "small"}},
		{"unknown dataset", StreamRequest{Dataset: "nope", Window: 100}},
		{"extremum agg", StreamRequest{Dataset: "small", Window: 100, Agg: "MAX"}},
		{"bad resolution", StreamRequest{Dataset: "small", Window: 100, Resolution: 7}},
		{"bad sample", StreamRequest{Dataset: "small", Window: 100, Sample: 1.5}},
		{"bad threshold", StreamRequest{Dataset: "small", Window: 100, DriftThreshold: 2}},
	}
	for _, tc := range cases {
		if _, err := client.StartStream(ctx, tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: want HTTP 400, got %v", tc.name, err)
		}
	}
	if _, err := client.Stream(ctx, "stream-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown stream id: want 404, got %v", err)
	}
}

func TestDrainCancelsActiveStreams(t *testing.T) {
	// SIGTERM semantics: Drain must not hang on an unbounded stream — it
	// cancels it and waits for teardown. 100k corpus passes keep the
	// stream from reaching "done" naturally before Drain lands, even
	// fully cache-warm.
	srv, ts, _ := newTestServer(t, &fakeGenerator{}, nil)
	client := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	status, err := client.StartStream(ctx, StreamRequest{
		Dataset:      "small",
		Window:       200,
		Sample:       0.1,
		Resolution:   160,
		Loops:        100000,
		DisableDrift: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	job, ok := srv.streams.get(status.ID)
	if !ok {
		t.Fatal("stream vanished")
	}
	st := job.status()
	if st.State != JobCanceled {
		t.Fatalf("state after drain = %q (%s)", st.State, st.Error)
	}
	// Post-drain stream requests are refused.
	if _, err := client.StartStream(ctx, StreamRequest{Dataset: "small", Window: 100}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("post-drain start: want 503, got %v", err)
	}
}
