package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// retryScript serves a fixed sequence of responses, then 200s forever.
type retryScript struct {
	mu       sync.Mutex
	steps    []retryStep
	attempts int
}

type retryStep struct {
	status     int
	retryAfter string
}

func (s *retryScript) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	i := s.attempts
	s.attempts++
	s.mu.Unlock()
	if i < len(s.steps) {
		step := s.steps[i]
		if step.retryAfter != "" {
			w.Header().Set("Retry-After", step.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(step.status)
		w.Write([]byte(`{"error":"scripted"}`))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"ok":true}`))
}

func (s *retryScript) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts
}

// fakeSleepClient wires a Client to the script with a recording sleep
// and identity jitter, so the backoff schedule is fully deterministic.
func fakeSleepClient(t *testing.T, script *retryScript) (*Client, *[]time.Duration) {
	t.Helper()
	srv := httptest.NewServer(script)
	t.Cleanup(srv.Close)
	var slept []time.Duration
	c := &Client{BaseURL: srv.URL}
	c.jitterFn = func(d time.Duration) time.Duration { return d }
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

// TestClientRetrySchedule pins the exact backoff sequence: exponential
// doubling from the 50ms base, with a 429's Retry-After flooring the
// computed delay. No wall-clock time passes — the sleep fn only records.
func TestClientRetrySchedule(t *testing.T) {
	script := &retryScript{steps: []retryStep{
		{status: http.StatusTooManyRequests, retryAfter: "1"},
		{status: http.StatusTooManyRequests},
		{status: http.StatusServiceUnavailable},
	}}
	c, slept := fakeSleepClient(t, script)

	payload, err := c.GetProfile(context.Background(), "deadbeefdeadbeef")
	if err != nil {
		t.Fatalf("GetProfile after retries: %v", err)
	}
	if string(payload) != `{"ok":true}` {
		t.Fatalf("payload = %s", payload)
	}
	if got := script.count(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (3 retryable failures + success)", got)
	}
	// Retry 0 would back off 50ms, but Retry-After: 1 floors it to 1s.
	// Retries 1 and 2 follow the plain exponential schedule.
	want := []time.Duration{time.Second, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("slept %v, want %v", *slept, want)
		}
	}
}

// TestClientRetryCeiling: the exponential delay saturates at
// RetryMaxDelay instead of doubling without bound.
func TestClientRetryCeiling(t *testing.T) {
	script := &retryScript{steps: []retryStep{
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
	}}
	c, slept := fakeSleepClient(t, script)
	c.MaxRetries = 4
	c.RetryBaseDelay = 100 * time.Millisecond
	c.RetryMaxDelay = 300 * time.Millisecond

	if _, err := c.GetProfile(context.Background(), "deadbeefdeadbeef"); err != nil {
		t.Fatalf("GetProfile: %v", err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("slept %v, want %v", *slept, want)
		}
	}
}

// TestClientRetryExhaustion: a server that never recovers eventually
// surfaces its last error, after exactly MaxRetries sleeps.
func TestClientRetryExhaustion(t *testing.T) {
	script := &retryScript{steps: []retryStep{
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
	}}
	c, slept := fakeSleepClient(t, script)

	_, err := c.GetProfile(context.Background(), "deadbeefdeadbeef")
	if err == nil {
		t.Fatal("want error after retry exhaustion")
	}
	if !strings.Contains(err.Error(), "429") {
		t.Fatalf("exhaustion error should carry the last status: %v", err)
	}
	if got := script.count(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (1 + default 3 retries)", got)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
}

// TestClientNoRetryOn502: generation failure is deterministic; replaying
// it would fail identically, so the client must not retry.
func TestClientNoRetryOn502(t *testing.T) {
	script := &retryScript{steps: []retryStep{
		{status: http.StatusBadGateway},
	}}
	c, slept := fakeSleepClient(t, script)

	_, err := c.GetProfile(context.Background(), "deadbeefdeadbeef")
	if err == nil {
		t.Fatal("want error on 502")
	}
	if got := script.count(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry of a deterministic failure)", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept %v before a non-retryable error", *slept)
	}
}

// TestClientRetriesDisabled: MaxRetries < 0 turns the policy off.
func TestClientRetriesDisabled(t *testing.T) {
	script := &retryScript{steps: []retryStep{
		{status: http.StatusTooManyRequests},
	}}
	c, slept := fakeSleepClient(t, script)
	c.MaxRetries = -1

	if _, err := c.GetProfile(context.Background(), "deadbeefdeadbeef"); err == nil {
		t.Fatal("want the raw 429 with retries disabled")
	}
	if got := script.count(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v with retries disabled", *slept)
	}
}

// TestClientRetryCancelDuringBackoff: a context canceled mid-sleep
// aborts the retry loop and reports both the cancellation and the
// failure it was backing off from.
func TestClientRetryCancelDuringBackoff(t *testing.T) {
	script := &retryScript{steps: []retryStep{
		{status: http.StatusTooManyRequests},
		{status: http.StatusTooManyRequests},
	}}
	srv := httptest.NewServer(script)
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{BaseURL: srv.URL}
	c.jitterFn = func(d time.Duration) time.Duration { return d }
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		cancel() // the caller gives up while the client is backing off
		return ctx.Err()
	}

	_, err := c.GetProfile(ctx, "deadbeefdeadbeef")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "429") {
		t.Fatalf("cancellation error should mention the pending failure: %v", err)
	}
	if got := script.count(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled during first backoff)", got)
	}
}

// TestClientRetryTransportError: connection-level failures follow the
// same backoff schedule as retryable statuses.
func TestClientRetryTransportError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // every dial now fails

	var slept []time.Duration
	c := &Client{BaseURL: url}
	c.jitterFn = func(d time.Duration) time.Duration { return d }
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	_, err := c.GetProfile(context.Background(), "deadbeefdeadbeef")
	if err == nil {
		t.Fatal("want transport error")
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i, d := range want {
		if slept[i] != d {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestEqualJitterBounds(t *testing.T) {
	d := 400 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := equalJitter(d)
		if j < d/2 || j > d {
			t.Fatalf("equalJitter(%v) = %v, want in [%v, %v]", d, j, d/2, d)
		}
	}
	if equalJitter(0) != 0 {
		t.Fatal("equalJitter(0) != 0")
	}
}

func TestRetryAfterHint(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if got := retryAfterHint(mk("3")); got != 3*time.Second {
		t.Fatalf("delta-seconds: %v", got)
	}
	if got := retryAfterHint(mk("")); got != 0 {
		t.Fatalf("absent header: %v", got)
	}
	if got := retryAfterHint(mk("soon")); got != 0 {
		t.Fatalf("garbage header: %v", got)
	}
	if got := retryAfterHint(mk("-2")); got != 0 {
		t.Fatalf("negative delta: %v", got)
	}
	// HTTP-date form: a deadline a few seconds out yields a positive
	// wait; a past date yields zero.
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if got := retryAfterHint(mk(future)); got <= 0 || got > 5*time.Second {
		t.Fatalf("future date: %v", got)
	}
	past := time.Now().Add(-5 * time.Second).UTC().Format(http.TimeFormat)
	if got := retryAfterHint(mk(past)); got != 0 {
		t.Fatalf("past date: %v", got)
	}
}
