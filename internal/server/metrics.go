package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"smokescreen/internal/detect"
	"smokescreen/internal/outputs"
	"smokescreen/internal/plan"
	"smokescreen/internal/stream"
	"smokescreen/internal/transport"
)

// metrics holds the daemon's cumulative counters. Everything is atomic so
// the hot paths never contend on a metrics lock; gauges (queue depth, job
// states) are sampled at render time instead of tracked.
type metrics struct {
	httpRequests        atomic.Int64
	profilesServed      atomic.Int64 // 200 responses carrying profile JSON
	generations         atomic.Int64 // Generate calls started
	generationFailures  atomic.Int64
	generationsCanceled atomic.Int64 // generations stopped by cancel/deadline
	cancellations       atomic.Int64 // DELETE /v1/jobs cancel requests honored
	coalesced           atomic.Int64 // requests attached to an in-flight job
	rejectedQueueFull   atomic.Int64 // 429s
	rejectedDraining    atomic.Int64 // 503s
	streamsStarted      atomic.Int64 // POST /v1/streams accepted
	streamsCanceled     atomic.Int64 // streams stopped by DELETE/drain
	streamFailures      atomic.Int64 // streams ended by an error
}

// render writes the metrics in the Prometheus text exposition format
// (untyped samples; no client library in the dependency budget). The
// store, detector, and transport layers contribute their own counters so
// one scrape covers the whole daemon.
func (m *metrics) render(w io.Writer, queueDepth, queueCap int, jobs *jobSet, streams *streamSet, st Backend) {
	queued, running, done, failed, canceled := jobs.counts()
	stats := st.Stats()
	tr := transport.Totals()
	dc := detect.Stats()
	oc := outputs.ReadStats()
	sg := plan.Stages()
	sc := stream.Totals()
	streamsActive, streamLag := streams.activeAndMaxLag()

	var dedup int64
	if outputs.Sharing() {
		dedup = 1
	}
	var quantized int64
	if detect.Quantized() {
		quantized = 1
	}
	samples := map[string]int64{
		"smokescreend_http_requests_total":               m.httpRequests.Load(),
		"smokescreend_profiles_served_total":             m.profilesServed.Load(),
		"smokescreend_generations_total":                 m.generations.Load(),
		"smokescreend_generation_failures_total":         m.generationFailures.Load(),
		"smokescreend_generations_canceled_total":        m.generationsCanceled.Load(),
		"smokescreend_job_cancellations_total":           m.cancellations.Load(),
		"smokescreend_requests_coalesced_total":          m.coalesced.Load(),
		"smokescreend_rejected_queue_full_total":         m.rejectedQueueFull.Load(),
		"smokescreend_rejected_draining_total":           m.rejectedDraining.Load(),
		"smokescreend_queue_depth":                       int64(queueDepth),
		"smokescreend_queue_capacity":                    int64(queueCap),
		"smokescreend_jobs_queued":                       int64(queued),
		"smokescreend_jobs_running":                      int64(running),
		"smokescreend_jobs_done":                         int64(done),
		"smokescreend_jobs_failed":                       int64(failed),
		"smokescreend_jobs_canceled":                     int64(canceled),
		"smokescreend_detect_dedup_enabled":              dedup,
		"smokescreend_outputs_tables":                    int64(oc.Tables),
		"smokescreend_outputs_frames_detected_total":     oc.FramesDetected,
		"smokescreend_outputs_frame_hits_total":          oc.FrameHits,
		"smokescreend_stage_plan_ns_total":               sg.PlanNS,
		"smokescreend_stage_detect_ns_total":             sg.DetectNS,
		"smokescreend_stage_estimate_ns_total":           sg.EstimateNS,
		"smokescreend_stage_tasks_planned_total":         sg.Tasks,
		"smokescreend_stage_units_planned_total":         sg.Units,
		"smokescreend_stage_dedup_saved_frames_total":    sg.DedupSavedFrames,
		"smokescreend_store_cache_hits_total":            stats.Hits,
		"smokescreend_store_disk_hits_total":             stats.DiskHits,
		"smokescreend_store_misses_total":                stats.Misses,
		"smokescreend_store_puts_total":                  stats.Puts,
		"smokescreend_store_cache_bytes":                 stats.CacheBytes,
		"smokescreend_store_cache_entries":               int64(stats.CacheCount),
		"smokescreend_detector_invocations_total":        detect.Invocations(),
		"smokescreend_detect_cache_bytes":                dc.TotalBytes(),
		"smokescreend_detect_full_series":                int64(dc.FullSeries),
		"smokescreend_detect_full_bytes":                 dc.FullBytes,
		"smokescreend_detect_sparse_series":              int64(dc.SparseSeries),
		"smokescreend_detect_sparse_bytes":               dc.SparseBytes,
		"smokescreend_detect_background_images":          int64(dc.BackgroundImages),
		"smokescreend_detect_background_bytes":           dc.BackgroundBytes,
		"smokescreend_detect_render_frames":              int64(dc.RenderFrames),
		"smokescreend_detect_render_bytes":               dc.RenderBytes,
		"smokescreend_detect_render_hits_total":          dc.RenderHits,
		"smokescreend_detect_render_misses_total":        dc.RenderMisses,
		"smokescreend_quantized_rasters_enabled":         quantized,
		"smokescreend_delta_detect_mode":                 int64(detect.DeltaDetectMode()),
		"smokescreend_delta_tiles_reused_total":          dc.DeltaTilesReused,
		"smokescreend_delta_tiles_redetected_total":      dc.DeltaTilesRedetected,
		"smokescreend_delta_candidates_reused_total":     dc.DeltaCandidatesReused,
		"smokescreend_delta_tables":                      int64(dc.DeltaTables),
		"smokescreend_delta_cache_bytes":                 dc.DeltaBytes,
		"smokescreend_streams_total":                     m.streamsStarted.Load(),
		"smokescreend_streams_canceled_total":            m.streamsCanceled.Load(),
		"smokescreend_stream_failures_total":             m.streamFailures.Load(),
		"smokescreend_streams_active":                    int64(streamsActive),
		"smokescreend_stream_frames_total":               sc.Frames,
		"smokescreend_stream_late_frames_total":          sc.Late,
		"smokescreend_stream_windows_total":              sc.Windows,
		"smokescreend_stream_drift_events_total":         sc.Drifts,
		"smokescreend_stream_window_lag":                 int64(streamLag),
		"smokescreend_transport_bytes_sent_total":        tr.BytesSent,
		"smokescreend_transport_bytes_received_total":    tr.BytesReceived,
		"smokescreend_transport_messages_sent_total":     tr.MessagesSent,
		"smokescreend_transport_messages_received_total": tr.MessagesReceived,
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, samples[name])
	}
}
