package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/store"
)

// fakeGenerator counts Generate calls and can block until released, so
// tests control exactly when jobs finish.
type fakeGenerator struct {
	generations atomic.Int64
	keyErr      error
	genErr      error
	// block, when non-nil, is received from before Generate returns.
	block chan struct{}
	// started is signalled (non-blocking) when Generate begins.
	started chan struct{}
}

func (g *fakeGenerator) Key(req GenRequest) (string, string, error) {
	if g.keyErr != nil {
		return "", "", g.keyErr
	}
	req.normalize()
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%g|%g", req.Query, req.Seed, req.Step, req.MaxFraction)))
	return hex.EncodeToString(sum[:]), req.Query, nil
}

func (g *fakeGenerator) Generate(ctx context.Context, req GenRequest) ([]byte, error) {
	g.generations.Add(1)
	if g.started != nil {
		select {
		case g.started <- struct{}{}:
		default:
		}
	}
	if g.block != nil {
		select {
		case <-g.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if g.genErr != nil {
		return nil, g.genErr
	}
	return []byte(fmt.Sprintf(`{"version":1,"query":%q,"seed":%d}`, req.Query, req.Seed)), nil
}

// newTestServer builds a server over a temp store and returns it with its
// HTTP test frontend.
func newTestServer(t *testing.T, gen Generator, mutate func(*Config)) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, Generator: gen, Workers: 2, QueueDepth: 4, RequestTimeout: 5 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, ts, st
}

func postProfile(t *testing.T, url string, req GenRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/profiles", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestConcurrentPostsCoalesceToOneGeneration(t *testing.T) {
	// The acceptance scenario: M concurrent POSTs for one key trigger
	// exactly one generation and all M callers get byte-identical JSON.
	gen := &fakeGenerator{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts, _ := newTestServer(t, gen, nil)

	const m = 12
	req := GenRequest{Query: "SELECT AVG(count(car)) FROM small"}
	bodies := make([][]byte, m)
	keys := make([]string, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postProfile(t, ts.URL, req)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = apiError(resp)
				return
			}
			var err error
			bodies[i], err = readAll(resp)
			errs[i] = err
			keys[i] = resp.Header.Get("X-Smokescreen-Key")
		}(i)
	}
	// Let the single job start, then release it while all M wait.
	<-gen.started
	time.Sleep(50 * time.Millisecond)
	close(gen.block)
	wg.Wait()

	for i := 0; i < m; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d got different bytes:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
		if keys[i] != keys[0] || keys[i] == "" {
			t.Fatalf("caller %d got key %q, want %q", i, keys[i], keys[0])
		}
	}
	if n := gen.generations.Load(); n != 1 {
		t.Fatalf("generation ran %d times for %d concurrent requests, want exactly 1", n, m)
	}

	// A later request for the same key is a pure store hit.
	resp := postProfile(t, ts.URL, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal(apiError(resp))
	}
	body, _ := readAll(resp)
	if !bytes.Equal(body, bodies[0]) {
		t.Fatal("store hit returned different bytes")
	}
	if n := gen.generations.Load(); n != 1 {
		t.Fatalf("store hit re-generated (%d total)", n)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func TestGetProfileLifecycle(t *testing.T) {
	gen := &fakeGenerator{}
	_, ts, _ := newTestServer(t, gen, nil)

	// Unknown key: 404.
	missing := strings.Repeat("ab", 32)
	resp, err := http.Get(ts.URL + "/v1/profiles/" + missing)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing = %d, want 404", resp.StatusCode)
	}

	// Generate, then GET by key.
	post := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small"})
	key := post.Header.Get("X-Smokescreen-Key")
	want, _ := readAll(post)
	post.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/profiles/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("GET by key = %d, bytes match %v", resp.StatusCode, bytes.Equal(got, want))
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	gen := &fakeGenerator{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts, _ := newTestServer(t, gen, nil)

	resp := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small", Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal(apiError(resp))
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.ID == "" || status.Key == "" {
		t.Fatalf("bad job status %+v", status)
	}

	client := &Client{BaseURL: ts.URL, PollInterval: 10 * time.Millisecond}
	ctx := context.Background()
	<-gen.started
	js, err := client.Job(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != JobRunning {
		t.Fatalf("state = %s, want running", js.State)
	}
	close(gen.block)
	if err := client.awaitJob(ctx, status.ID); err != nil {
		t.Fatal(err)
	}
	payload, err := client.GetProfile(ctx, status.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 {
		t.Fatal("empty payload after job completion")
	}

	// Unknown job id: 404.
	if _, err := client.Job(ctx, "job-999999"); err == nil {
		t.Fatal("unknown job did not error")
	}
}

func TestQueueBackpressure(t *testing.T) {
	// One worker, queue depth 1: job A runs, job B queues, job C must be
	// rejected with 429 — the daemon sheds load instead of buffering
	// unboundedly.
	gen := &fakeGenerator{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts, _ := newTestServer(t, gen, func(cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
	})
	defer close(gen.block)

	a := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small", Async: true})
	a.Body.Close()
	<-gen.started // A is running, queue empty
	b := postProfile(t, ts.URL, GenRequest{Query: "SELECT SUM(count(car)) FROM small", Async: true})
	b.Body.Close()
	if b.StatusCode != http.StatusAccepted {
		t.Fatalf("second job = %d, want 202", b.StatusCode)
	}
	c := postProfile(t, ts.URL, GenRequest{Query: "SELECT MAX(count(car)) FROM small", Async: true})
	c.Body.Close()
	if c.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job = %d, want 429", c.StatusCode)
	}
	if c.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Coalescing does not consume queue slots: re-requesting the queued
	// key attaches instead of rejecting.
	b2 := postProfile(t, ts.URL, GenRequest{Query: "SELECT SUM(count(car)) FROM small", Async: true})
	b2.Body.Close()
	if b2.StatusCode != http.StatusAccepted {
		t.Fatalf("coalesced re-request = %d, want 202", b2.StatusCode)
	}
}

func TestGenerationFailureReported(t *testing.T) {
	gen := &fakeGenerator{genErr: errors.New("detector exploded")}
	_, ts, _ := newTestServer(t, gen, nil)
	resp := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("failed generation = %d, want 502", resp.StatusCode)
	}
	err := apiError(resp)
	if !strings.Contains(err.Error(), "detector exploded") {
		t.Fatalf("error lost cause: %v", err)
	}

	// A failed key is retryable: fix the generator and re-POST.
	gen.genErr = nil
	resp2 := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after failure = %d, want 200", resp2.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	gen := &fakeGenerator{keyErr: errors.New("unknown dataset")}
	_, ts, _ := newTestServer(t, gen, nil)
	for name, body := range map[string]string{
		"not json":    "{",
		"empty query": `{}`,
		"key error":   `{"query":"SELECT AVG(count(car)) FROM nowhere"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/profiles", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestUnknownFieldRejected: version skew — a request with a field this
// server version does not know gets a typed 400 ("unknown_field") rather
// than a silently truncated decode that would cache the wrong artifact.
func TestUnknownFieldRejected(t *testing.T) {
	gen := &fakeGenerator{}
	_, ts, _ := newTestServer(t, gen, nil)
	body := `{"query":"SELECT AVG(count(car)) FROM small","ladder_rungs":4}`
	resp, err := http.Post(ts.URL+"/v1/profiles", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var got struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Code != "unknown_field" {
		t.Fatalf("code %q, want unknown_field (error %q)", got.Code, got.Error)
	}
	if !strings.Contains(got.Error, "ladder_rungs") {
		t.Fatalf("error %q does not name the offending field", got.Error)
	}
}

func TestDrainDuringInflightJob(t *testing.T) {
	// SIGTERM mid-job (Drain is what the daemon's signal handler calls):
	// the in-flight generation completes, its artifact lands in the store
	// uncorrupted, and new requests are refused with 503.
	gen := &fakeGenerator{block: make(chan struct{}), started: make(chan struct{}, 1)}
	srv, ts, st := newTestServer(t, gen, func(cfg *Config) { cfg.Workers = 1 })

	resp := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small", Async: true})
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-gen.started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Drain must not finish while the job is still running.
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a job in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// New work is refused while draining.
	refused := postProfile(t, ts.URL, GenRequest{Query: "SELECT SUM(count(car)) FROM small", Async: true})
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain = %d, want 503", refused.StatusCode)
	}

	// Release the job; drain completes and the artifact is intact.
	close(gen.block)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	payload, err := st.Get(status.Key)
	if err != nil {
		t.Fatalf("artifact after drain: %v", err)
	}
	if !json.Valid(payload) {
		t.Fatalf("artifact corrupt after drain: %s", payload)
	}
	keys, corrupt := st.Keys()
	if len(corrupt) != 0 || len(keys) != 1 {
		t.Fatalf("store after drain: keys=%v corrupt=%v", keys, corrupt)
	}
	// Drain is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptEntryHealedByRepost(t *testing.T) {
	gen := &fakeGenerator{}
	_, ts, st := newTestServer(t, gen, nil)
	req := GenRequest{Query: "SELECT AVG(count(car)) FROM small"}
	resp := postProfile(t, ts.URL, req)
	key := resp.Header.Get("X-Smokescreen-Key")
	want, _ := readAll(resp)
	resp.Body.Close()

	// Corrupt the artifact on disk (and evict the memory cache by
	// reopening the store path directly).
	path := filepath.Join(st.Root(), key[:2], key+".json")
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	// Evict from LRU so the corruption is visible.
	if err := st.Delete(key); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// GET reports the corruption as 410 Gone.
	get, err := http.Get(ts.URL + "/v1/profiles/" + key)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusGone {
		t.Fatalf("GET corrupt = %d, want 410", get.StatusCode)
	}

	// POST regenerates past the corruption.
	resp2 := postProfile(t, ts.URL, req)
	got, _ := readAll(resp2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("repost over corrupt entry = %d", resp2.StatusCode)
	}
	if gen.generations.Load() != 2 {
		t.Fatalf("generations = %d, want 2 (initial + heal)", gen.generations.Load())
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	gen := &fakeGenerator{}
	srv, ts, _ := newTestServer(t, gen, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	post := postProfile(t, ts.URL, GenRequest{Query: "SELECT AVG(count(car)) FROM small"})
	post.Body.Close()

	// Exercise the degraded-frame render cache so its gauges are non-zero
	// in the scrape: one full-frame detection renders (and caches) frame 0.
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)
	detect.YOLOv4Sim().DetectFrameFull(dataset.MustLoad("small"), 0, 160)

	// Exercise the temporal delta detector so its effectiveness gauges are
	// live in the scrape: two consecutive frames through one exact-mode run.
	detect.SetDeltaMode(detect.DeltaExact)
	t.Cleanup(func() { detect.SetDeltaMode(detect.DeltaOff) })
	deltaRun := detect.YOLOv4Sim().NewDeltaRun(dataset.MustLoad("small"), 160)
	deltaRun.DetectFrame(0)
	deltaRun.DetectFrame(1)
	deltaRun.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := readAll(resp)
	resp.Body.Close()
	text := string(metricsBody)
	for _, want := range []string{
		"smokescreend_generations_total 1",
		"smokescreend_profiles_served_total 1",
		"smokescreend_store_puts_total 1",
		"smokescreend_transport_bytes_sent_total",
		"smokescreend_detector_invocations_total",
		"smokescreend_queue_capacity 4",
		"smokescreend_detect_cache_bytes",
		"smokescreend_detect_full_series",
		"smokescreend_detect_sparse_series",
		"smokescreend_detect_background_images 1",
		"smokescreend_detect_render_frames 1",
		"smokescreend_detect_render_misses_total 1",
		"smokescreend_detect_render_hits_total 0",
		"smokescreend_quantized_rasters_enabled 0",
		"smokescreend_delta_detect_mode 1",
		"smokescreend_delta_tiles_reused_total",
		"smokescreend_delta_candidates_reused_total",
		"smokescreend_delta_tables 0",
		"smokescreend_delta_cache_bytes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// The render cache's accounted bytes must appear in the total gauge:
	// a 160x160 float32 frame is 102400 bytes plus entry overhead.
	if !strings.Contains(text, "smokescreend_detect_render_bytes 102496") {
		t.Errorf("metrics missing exact render bytes:\n%s", text)
	}
	// The delta run above fully evaluated objects on its keyframe, so the
	// redetected-tiles counter must have moved.
	if strings.Contains(text, "smokescreend_delta_tiles_redetected_total 0\n") {
		t.Errorf("delta redetected counter stayed zero:\n%s", text)
	}

	// Draining flips healthz.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = readAll(resp)
	resp.Body.Close()
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz after drain: %s", body)
	}
}

func TestClientGenerateEndToEnd(t *testing.T) {
	// Exercise the real generator over the tiny corpus through the full
	// HTTP client path and check the decoded curve is well-formed.
	if testing.Short() {
		t.Skip("real generation in -short mode")
	}
	gen := &SystemGenerator{Parallelism: 2}
	_, ts, _ := newTestServer(t, gen, nil)
	client := &Client{BaseURL: ts.URL, PollInterval: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	req := GenRequest{Query: "SELECT AVG(count(car)) FROM small", Step: 0.05, MaxFraction: 0.1}
	prof, key, err := client.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if key == "" || len(prof.Points) == 0 {
		t.Fatalf("degenerate profile: key=%q points=%d", key, len(prof.Points))
	}
	for _, pt := range prof.Points {
		if pt.Setting.SampleFraction <= 0 || pt.Estimate.ErrBound < 0 {
			t.Fatalf("malformed point %+v", pt)
		}
	}

	// Determinism across the service boundary: a second request returns
	// byte-identical JSON from the store without regenerating.
	raw1, _, err := client.GenerateRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	raw2, _, err := client.GenerateRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("repeat request returned different bytes")
	}

	// The remote profile matches a local generation bit-for-bit in
	// canonical (store) form: the store compacts payloads on Put, so the
	// served bytes are the canonicalization of what the generator emits.
	local, err := gen.Generate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var localCanonical bytes.Buffer
	if err := json.Compact(&localCanonical, local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, localCanonical.Bytes()) {
		t.Fatalf("remote and local artifacts differ:\nremote: %s\nlocal: %s", raw1, localCanonical.Bytes())
	}
}

func TestSystemGeneratorKeyCanonicalization(t *testing.T) {
	gen := &SystemGenerator{}
	// Spelled defaults and omitted defaults address the same artifact.
	k1, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small"})
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := gen.Key(GenRequest{Query: "select avg(count(car)) from small", Seed: 1, Step: 0.01, MaxFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("equivalent requests produced different keys")
	}
	// REMOVE clause order is canonicalized too.
	k3, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small REMOVE person,face"})
	if err != nil {
		t.Fatal(err)
	}
	k4, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small REMOVE face,person"})
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k4 {
		t.Fatal("REMOVE order changed the key")
	}
	if k1 == k3 {
		t.Fatal("different intervention families share a key")
	}
	// A different seed is a different artifact.
	k5, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if k5 == k1 {
		t.Fatal("seed not part of the key")
	}
	// Pixel-axis clauses are first-class: each produces its own artifact.
	k6, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small NOISE 0.1 BLUR 7 QUANTIZE 32 OCCLUDE 0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if k6 == k1 {
		t.Fatal("pixel-axis clauses not part of the key")
	}
	// A ladder request is a distinct artifact from the plain sweep, and an
	// unknown ladder is rejected up front.
	k7, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small", Ladder: "default"})
	if err != nil {
		t.Fatal(err)
	}
	if k7 == k1 {
		t.Fatal("ladder not part of the key")
	}
	if _, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small", Ladder: "nope"}); err == nil {
		t.Fatal("unknown ladder accepted")
	}
	// Ladder requests reject per-query intervention clauses: tiers own them.
	if _, _, err := gen.Key(GenRequest{Query: "SELECT AVG(count(car)) FROM small RESOLUTION 160", Ladder: "default"}); err == nil {
		t.Fatal("ladder request with RESOLUTION clause accepted")
	}
}

var _ Generator = (*fakeGenerator)(nil)
var _ Generator = (*SystemGenerator)(nil)
