package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/stream"
	"smokescreen/internal/transport"
)

// Streaming ingest as daemon jobs: POST /v1/streams starts a simulated
// camera (internal/camera over an in-process pipe) feeding a
// stream.Receiver; GET /v1/streams/{id} reports the live windowed
// profile and drift state; DELETE cancels. Stream jobs live outside the
// generation worker pool — they are long-running by design and must not
// starve profile generations — but they respect drain: shutdown cancels
// every active stream, and Drain waits for their teardown (which never
// persists a partial window).

// StreamRequest is the wire form of POST /v1/streams.
type StreamRequest struct {
	// Dataset names the corpus the camera streams (dataset registry).
	Dataset string `json:"dataset"`
	// Model is the detector (default yolov4-sim).
	Model string `json:"model,omitempty"`
	// Class is the counted object class (default car).
	Class string `json:"class,omitempty"`
	// Agg is the windowed aggregate: avg (default), sum or count.
	Agg string `json:"agg,omitempty"`
	// Window is W, the span in stream positions of each windowed answer.
	// Required.
	Window int `json:"window"`
	// Stride is the distance between window starts; 0 means tumbling.
	Stride int `json:"stride,omitempty"`
	// Sample is the camera's frame-sampling fraction f (default 0.2).
	Sample float64 `json:"sample,omitempty"`
	// Resolution is the transmitted resolution p; 0 means model native.
	Resolution int `json:"resolution,omitempty"`
	// Loops is how many camera sessions replay the corpus back to back —
	// the unbounded-video stand-in (default 1).
	Loops int `json:"loops,omitempty"`
	// Seed roots the camera's sampling randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// DriftThreshold is the total-variation trigger (default
	// stream.DefaultDriftThreshold); DisableDrift skips baseline
	// construction entirely.
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	DisableDrift   bool    `json:"disable_drift,omitempty"`
	// DriftNoise injects a distribution shift for soak testing: sessions
	// from DriftAfterLoop onward stream a noised view of the corpus (the
	// replay source shifts with the camera, so detection stays
	// consistent) while the baseline keeps describing the clean corpus.
	DriftNoise     float64 `json:"drift_noise,omitempty"`
	DriftAfterLoop int     `json:"drift_after_loop,omitempty"`

	// WirePixels selects central detection on the transmitted rasters
	// instead of the replay backend.
	WirePixels bool `json:"wire_pixels,omitempty"`
}

func (r *StreamRequest) normalize() {
	if r.Model == "" {
		r.Model = "yolov4-sim"
	}
	if r.Class == "" {
		r.Class = "car"
	}
	if r.Agg == "" {
		r.Agg = "avg"
	}
	if r.Sample == 0 {
		r.Sample = 0.2
	}
	if r.Loops <= 0 {
		r.Loops = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.DriftAfterLoop <= 0 {
		r.DriftAfterLoop = 1
	}
}

// StreamStatus is the wire form of one stream job.
type StreamStatus struct {
	ID       string        `json:"id"`
	State    JobState      `json:"state"`
	Error    string        `json:"error,omitempty"`
	Dataset  string        `json:"dataset"`
	Class    string        `json:"class"`
	Window   int           `json:"window"`
	Stride   int           `json:"stride"`
	Loops    int           `json:"loops"`
	Created  time.Time     `json:"created"`
	Finished time.Time     `json:"finished,omitempty"`
	Stream   stream.Status `json:"stream"`
}

// streamJob is one live ingest pipeline: a camera goroutine and a
// receiver goroutine joined by an in-process pipe.
type streamJob struct {
	id      string
	req     StreamRequest
	recv    *stream.Receiver
	cancel  context.CancelFunc
	created time.Time

	mu       sync.Mutex
	state    JobState
	err      string
	finished time.Time
}

// streamSet tracks stream jobs by id. Terminal jobs stay queryable for
// the daemon's lifetime: streams are few and operator-started, unlike
// generation jobs, so there is no history eviction.
type streamSet struct {
	mu     sync.Mutex
	nextID int
	byID   map[string]*streamJob
}

func newStreamSet() *streamSet {
	return &streamSet{byID: make(map[string]*streamJob)}
}

func (ss *streamSet) create(req StreamRequest, recv *stream.Receiver, cancel context.CancelFunc, now time.Time) *streamJob {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.nextID++
	job := &streamJob{
		id:      fmt.Sprintf("stream-%06d", ss.nextID),
		req:     req,
		recv:    recv,
		cancel:  cancel,
		created: now,
		state:   JobRunning,
	}
	ss.byID[job.id] = job
	return job
}

func (ss *streamSet) get(id string) (*streamJob, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	job, ok := ss.byID[id]
	return job, ok
}

// all returns the tracked jobs in id order.
func (ss *streamSet) all() []*streamJob {
	ss.mu.Lock()
	jobs := make([]*streamJob, 0, len(ss.byID))
	for _, job := range ss.byID {
		jobs = append(jobs, job)
	}
	ss.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })
	return jobs
}

// cancelAll fires every job's cancel; terminal jobs ignore it.
func (ss *streamSet) cancelAll() {
	for _, job := range ss.all() {
		job.cancel()
	}
}

// activeAndMaxLag reports how many streams are still running and the
// largest window lag among them, for the metrics scrape.
func (ss *streamSet) activeAndMaxLag() (active int, maxLag int) {
	for _, job := range ss.all() {
		job.mu.Lock()
		running := job.state == JobRunning
		job.mu.Unlock()
		if !running {
			continue
		}
		active++
		if lag := job.recv.Status().WindowLag; lag > maxLag {
			maxLag = lag
		}
	}
	return active, maxLag
}

// finish records the job's terminal state.
func (job *streamJob) finish(err error, now time.Time) {
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = now
	switch {
	case err == nil:
		job.state = JobDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.state = JobCanceled
		job.err = err.Error()
	default:
		job.state = JobFailed
		job.err = err.Error()
	}
}

func (job *streamJob) status() StreamStatus {
	job.mu.Lock()
	state, errText, finished := job.state, job.err, job.finished
	job.mu.Unlock()
	return StreamStatus{
		ID:       job.id,
		State:    state,
		Error:    errText,
		Dataset:  job.req.Dataset,
		Class:    job.req.Class,
		Window:   job.req.Window,
		Stride:   job.req.Stride,
		Loops:    job.req.Loops,
		Created:  job.created,
		Finished: finished,
		Stream:   job.recv.Status(),
	}
}

// resolveStream turns a request into the receiver config and the camera
// nodes. It is cheap — no detector work; the corpus baseline is
// deferred to the stream goroutine, where it runs under the job
// context.
func resolveStream(req *StreamRequest) (*stream.Config, []*camera.Node, error) {
	req.normalize()
	if req.Window <= 0 {
		return nil, nil, fmt.Errorf("server: stream request requires a positive window (got %d)", req.Window)
	}
	v, err := dataset.Load(req.Dataset)
	if err != nil {
		return nil, nil, err
	}
	model, err := detect.ModelByName(req.Model)
	if err != nil {
		return nil, nil, err
	}
	class, err := scene.ParseClass(req.Class)
	if err != nil {
		return nil, nil, err
	}
	agg, err := estimate.ParseAgg(req.Agg)
	if err != nil {
		return nil, nil, err
	}
	if agg.IsExtremum() || agg == estimate.VAR {
		return nil, nil, fmt.Errorf("server: aggregate %v does not stream (windowed answers need the streaming estimator)", agg)
	}
	if req.Resolution != 0 && !model.ValidResolution(req.Resolution) {
		return nil, nil, fmt.Errorf("server: resolution %d invalid for %s", req.Resolution, model.Name)
	}
	if req.Sample <= 0 || req.Sample > 1 {
		return nil, nil, fmt.Errorf("server: sample fraction %v outside (0, 1]", req.Sample)
	}
	if req.DriftNoise < 0 || req.DriftNoise > 0.5 {
		return nil, nil, fmt.Errorf("server: drift noise %v outside [0, 0.5]", req.DriftNoise)
	}

	// Sources and nodes are compact, not one entry per loop: the receiver
	// replays Sources[min(session, len-1)], and the camera goroutine
	// clamps the same way — so Loops can be arbitrarily large (the
	// unbounded-video stand-in) without per-loop allocation. With drift
	// noise the first DriftAfterLoop sessions stream the clean corpus and
	// every later one the noised view; otherwise a single entry serves
	// all sessions.
	newNode := func(src *scene.Video) *camera.Node {
		return &camera.Node{
			Video:   src,
			Model:   model,
			Setting: degrade.Setting{SampleFraction: req.Sample, Resolution: req.Resolution},
			Energy:  camera.DefaultEnergyModel(),
		}
	}
	sources := []*scene.Video{v}
	nodes := []*camera.Node{newNode(v)}
	if req.DriftNoise > 0 && req.DriftAfterLoop < req.Loops {
		noised := v.WithNoise(float32(req.DriftNoise))
		for len(sources) < req.DriftAfterLoop {
			sources = append(sources, v)
			nodes = append(nodes, nodes[0])
		}
		sources = append(sources, noised)
		nodes = append(nodes, newNode(noised))
	}
	cfg := &stream.Config{
		Model:          model,
		Class:          class,
		Agg:            agg,
		WindowSpan:     req.Window,
		WindowStride:   req.Stride,
		Sources:        sources,
		WirePixels:     req.WirePixels,
		DriftThreshold: req.DriftThreshold,
	}
	return cfg, nodes, nil
}

// startStream validates the request, builds the pipeline, and launches
// the camera and receiver goroutines. The returned job is already
// running.
func (s *Server) startStream(req StreamRequest) (*streamJob, error) {
	if s.draining() {
		return nil, errDraining
	}
	cfg, nodes, err := resolveStream(&req)
	if err != nil {
		return nil, err
	}
	recv, err := stream.New(*cfg)
	if err != nil {
		return nil, err
	}

	// The job context is minted fresh, not taken from the HTTP request:
	// the stream outlives the POST that started it. DELETE and drain
	// cancel it.
	ctx, cancel := context.WithCancel(context.Background())
	job := s.streams.create(req, recv, cancel, time.Now())

	clientEnd, serverEnd := net.Pipe()
	// Cancellation must also unblock pipe reads/writes: the receiver may
	// be parked in a transport read (the stream package's documented
	// contract), and the camera in a write.
	go func() {
		<-ctx.Done()
		clientEnd.Close()
		serverEnd.Close()
	}()

	s.streamWG.Add(2)
	go func() { // camera side
		defer s.streamWG.Done()
		conn := transport.New(clientEnd)
		for i := 0; i < req.Loops; i++ {
			node := nodes[len(nodes)-1]
			if i < len(nodes) {
				node = nodes[i]
			}
			if _, err := node.StreamCtx(ctx, conn, stats.NewStream(req.Seed+uint64(i))); err != nil {
				s.cfg.Logf("stream %s: camera stopped: %v", job.id, err)
				return
			}
		}
		clientEnd.Close() // clean end-of-stream for the receiver
	}()
	go func() { // receiver side: owns the job's terminal state
		defer s.streamWG.Done()
		defer cancel()
		runErr := s.runStream(ctx, cfg, recv, req, serverEnd)
		if runErr == nil && ctx.Err() != nil {
			// A DELETE that lands exactly at a session boundary closes the
			// pipe where the receiver reads a clean end-of-stream; a
			// canceled job must still report canceled.
			runErr = ctx.Err()
		}
		job.finish(runErr, time.Now())
		switch {
		case runErr == nil:
			s.cfg.Logf("stream %s: done (%d windows)", job.id, recv.Status().Windows)
		case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
			s.metrics.streamsCanceled.Add(1)
			s.cfg.Logf("stream %s: canceled: %v", job.id, runErr)
		default:
			s.metrics.streamFailures.Add(1)
			s.cfg.Logf("stream %s: failed: %v", job.id, runErr)
		}
	}()
	s.metrics.streamsStarted.Add(1)
	s.cfg.Logf("stream %s: started (%s, window %d, %d sessions)", job.id, req.Dataset, req.Window, req.Loops)
	return job, nil
}

// runStream builds the drift baseline (unless disabled) and runs the
// receiver. The baseline is detector-heavy — it runs here, under the
// job context, so DELETE cancels a stream still warming up.
func (s *Server) runStream(ctx context.Context, cfg *stream.Config, recv *stream.Receiver, req StreamRequest, conn net.Conn) error {
	if !req.DisableDrift {
		p := req.Resolution
		if p == 0 {
			p = cfg.Model.NativeInput
		}
		base, err := stream.CorpusBaseline(ctx, cfg.Sources[0], cfg.Model, cfg.Class, p)
		if err != nil {
			return err
		}
		recv.SetBaseline(base)
	}
	return recv.Run(ctx, transport.New(conn))
}
