// Package server implements the Smokescreen profile service: an HTTP
// JSON API over the content-addressed profile store (internal/store) with
// an asynchronous, coalescing generation job queue on top of the parallel
// profile engine. It turns the one-shot CLI profiler into a long-running
// system: many consumers read one store, and N concurrent requests for
// the same (corpus, query, intervention family, params, seed) trigger
// exactly one generation.
//
// API:
//
//	GET  /v1/profiles/{key}  serve a stored profile verbatim
//	POST /v1/profiles        request generation (sync by default;
//	                         "async": true returns 202 + job id)
//	GET  /v1/jobs/{id}       job lifecycle status
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET  /healthz            liveness (reports draining)
//	GET  /metrics            Prometheus-style counters
//
// Flow control: the job queue is bounded; when it is full POST returns
// 429 so callers back off instead of piling goroutines onto the daemon.
// During drain (SIGTERM) new generation requests get 503 while in-flight
// jobs run to completion — the store's atomic writes make the shutdown
// window corruption-free.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"smokescreen/internal/store"
)

// Backend is the artifact storage the server reads and writes. The
// single-process daemon hands it a *store.Store directly; a fleet node
// hands it a replicated store (internal/fleetd) whose Get repairs corrupt
// or missing local copies from peer replicas and whose Put fans the write
// out to them. Implementations must preserve the store package's error
// contract: ErrNotFound for never-stored keys and *CorruptError for
// unusable on-disk entries.
type Backend interface {
	Get(key string) ([]byte, error)
	Put(key string, payload []byte) error
	Stats() store.Stats
}

// Config assembles a Server.
type Config struct {
	// Store holds generated artifacts. Required. A plain *store.Store
	// serves the single-node daemon; fleet nodes wrap it (see Backend).
	Store Backend
	// Generator resolves and runs generations. Required.
	Generator Generator
	// Workers is the number of concurrent generation jobs (default 2).
	// Each generation additionally fans out internally per the
	// generator's parallelism.
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 16); beyond
	// it POST returns 429.
	QueueDepth int
	// RequestTimeout caps how long a synchronous POST waits for its job
	// before degrading to a 202 with the job id (default 120s).
	RequestTimeout time.Duration
	// JobTimeout caps one generation (default 10m).
	JobTimeout time.Duration
	// JobHistory bounds remembered terminal jobs (default 1024).
	JobHistory int
	// JobIDPrefix namespaces generated job ids ("n0-job-000001"). Fleet
	// nodes set a per-node prefix so a job handle returned by one node is
	// never mistaken for another node's job when requests are forwarded.
	JobIDPrefix string
	// BaseContext is the parent of every generation job's context; nil
	// means context.Background(). Canceling it aborts all running jobs at
	// once — the fleet harness cancels it to simulate a node dying
	// mid-generation without draining.
	BaseContext context.Context
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the profile service. Create with New, mount Handler, and call
// Close (or Drain) on shutdown.
type Server struct {
	cfg     Config
	store   Backend
	gen     Generator
	jobs    *jobSet
	queue   chan *Job
	metrics metrics

	// streams are long-running ingest jobs outside the worker pool;
	// streamWG tracks their goroutines so Drain can wait for teardown.
	streams  *streamSet
	streamWG sync.WaitGroup

	// lifecycle: mu serializes queue sends against stop's close(queue);
	// workers is closed when the last worker exits.
	mu      sync.Mutex
	stopped bool
	stopCh  chan struct{}
	workers chan struct{}
}

// New validates the config and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil || cfg.Generator == nil {
		return nil, fmt.Errorf("server: Config requires Store and Generator")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 120 * time.Second
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.BaseContext == nil {
		//smokevet:ignore ctxflow: the daemon's job root defaults to the process root; fleet harnesses inject a cancellable BaseContext to simulate node death
		cfg.BaseContext = context.Background()
	}
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		gen:     cfg.Generator,
		jobs:    newJobSet(cfg.JobHistory, cfg.JobIDPrefix),
		queue:   make(chan *Job, cfg.QueueDepth),
		streams: newStreamSet(),
		stopCh:  make(chan struct{}),
		workers: make(chan struct{}),
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range s.queue {
				s.run(job)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(s.workers)
	}()
	return s, nil
}

// draining reports whether shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.stopCh:
		return true
	default:
		return false
	}
}

// stop closes intake exactly once. The mutex serializes it against
// in-flight enqueue sends, so the queue is never sent to after close.
func (s *Server) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
		close(s.queue)
		// Streams are cancelled, not waited for, here: Drain owns the
		// wait. Cancellation tears down in-flight detection and the
		// receivers drop their partial windows.
		s.streams.cancelAll()
	}
}

// enqueue registers req's job, coalescing onto any active job for the
// same key. It returns errDraining after Drain/Close and errQueueFull
// when the bounded queue has no room.
var (
	errQueueFull = errors.New("server: generation queue full")
	errDraining  = errors.New("server: draining")
)

func (s *Server) enqueue(key, canonical string, req GenRequest) (*Job, error) {
	if s.draining() {
		return nil, errDraining
	}
	job, created := s.jobs.getOrCreate(key, canonical, req, time.Now())
	if !created {
		s.metrics.coalesced.Add(1)
		return job, nil
	}
	// The send must not race stop()'s close(queue); s.mu serializes them.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		s.jobs.abandon(job)
		return nil, errDraining
	}
	select {
	case s.queue <- job:
		return job, nil
	default:
		s.jobs.abandon(job)
		return nil, errQueueFull
	}
}

// run executes one generation job. The job's context is cancellable two
// ways — the job deadline and DELETE /v1/jobs/{id} — and the generator
// threads it through the plan/execute pipeline, so cancellation stops
// detector work promptly and nothing partial reaches the store.
func (s *Server) run(job *Job) {
	ctx, cancel := context.WithTimeout(s.cfg.BaseContext, s.cfg.JobTimeout)
	defer cancel()
	if !s.jobs.start(job, time.Now(), cancel) {
		// Canceled while queued; the cancel path already finalized it.
		return
	}
	s.metrics.generations.Add(1)
	s.cfg.Logf("job %s: generating key %s (%s)", job.ID, job.Key, job.Query)
	payload, err := s.gen.Generate(ctx, job.req)
	if err == nil {
		err = s.store.Put(job.Key, payload)
	}
	switch {
	case err == nil:
		s.cfg.Logf("job %s: done (%d bytes)", job.ID, len(payload))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.metrics.generationsCanceled.Add(1)
		s.cfg.Logf("job %s: canceled: %v", job.ID, err)
	default:
		s.metrics.generationFailures.Add(1)
		s.cfg.Logf("job %s: failed: %v", job.ID, err)
	}
	s.jobs.finish(job, err, time.Now())
}

// Drain stops intake, cancels active streams, and waits for queued and
// running jobs plus stream teardown to finish, or for ctx to expire. It
// is safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.stop()
	streamsDone := make(chan struct{})
	go func() {
		s.streamWG.Wait()
		close(streamsDone)
	}()
	select {
	case <-s.workers:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	select {
	case <-streamsDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// Close drains with a short grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/profiles/{key}", s.handleGetProfile)
	mux.HandleFunc("POST /v1/profiles", s.handlePostProfile)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	mux.HandleFunc("POST /v1/streams", s.handlePostStream)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleGetStream)
	mux.HandleFunc("DELETE /v1/streams/{id}", s.handleDeleteStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.httpRequests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeErrorCode writes a JSON error body carrying a stable machine-
// readable code alongside the human-readable message, for errors clients
// are expected to branch on (e.g. version skew).
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// writeProfile serves stored profile JSON verbatim — every caller of the
// same key receives byte-identical bytes.
func (s *Server) writeProfile(w http.ResponseWriter, key string, payload []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Smokescreen-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
	s.metrics.profilesServed.Add(1)
}

func (s *Server) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	payload, err := s.store.Get(key)
	switch {
	case err == nil:
		s.writeProfile(w, key, payload)
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	default:
		var corrupt *store.CorruptError
		if errors.As(err, &corrupt) {
			// The artifact is unusable until re-generated; tell the caller
			// to re-POST rather than retry the GET.
			writeError(w, http.StatusGone, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handlePostProfile(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeGenRequest(r.Body)
	if err != nil {
		var unknown *UnknownFieldError
		if errors.As(err, &unknown) {
			writeErrorCode(w, http.StatusBadRequest, "unknown_field", err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("server: request requires a query"))
		return
	}
	req.normalize()
	key, canonical, err := s.gen.Key(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Fast path: the artifact already exists.
	if payload, err := s.store.Get(key); err == nil {
		s.writeProfile(w, key, payload)
		return
	}
	// Miss — including a corrupt on-disk entry, which regeneration heals.

	job, err := s.enqueue(key, canonical, req)
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.rejectedQueueFull.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errDraining):
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, s.jobs.status(job))
		return
	}

	// Synchronous wait, bounded by the request timeout and the client's
	// own context; on timeout the job keeps running and the caller can
	// poll GET /v1/jobs/{id}.
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case <-job.done:
	case <-timer.C:
		writeJSON(w, http.StatusAccepted, s.jobs.status(job))
		return
	case <-r.Context().Done():
		// Client gave up; the job continues for future requesters.
		return
	}
	status := s.jobs.status(job)
	switch status.State {
	case JobFailed:
		writeError(w, http.StatusBadGateway, fmt.Errorf("server: generation failed: %s", status.Error))
		return
	case JobCanceled:
		writeError(w, http.StatusBadGateway, fmt.Errorf("server: generation canceled: %s", status.Error))
		return
	}
	payload, err := s.store.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeProfile(w, key, payload)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.status(job))
}

// handleDeleteJob cancels a job. Queued jobs finish immediately as
// canceled; running ones have their generation context canceled and reach
// the canceled state when the pipeline unwinds (the response reports the
// state at return time, so a still-unwinding job may read "running").
// Deleting a terminal job is a no-op, and the job stays queryable until
// history evicts it — DELETE is safe to retry.
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown job"))
		return
	}
	if s.jobs.cancel(job, time.Now()) {
		s.metrics.cancellations.Add(1)
		s.cfg.Logf("job %s: cancel requested", job.ID)
	}
	writeJSON(w, http.StatusOK, s.jobs.status(job))
}

// handlePostStream starts a streaming ingest job and returns 202 with
// its status; streams are inherently asynchronous (they run until the
// camera's sessions end or a DELETE stops them).
func (s *Server) handlePostStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding stream request: %w", err))
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, errors.New("server: stream request requires a dataset"))
		return
	}
	job, err := s.startStream(req)
	switch {
	case errors.Is(err, errDraining):
		s.metrics.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

func (s *Server) handleGetStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown stream"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

// handleDeleteStream cancels a stream. Like job cancellation, the
// response reports the state at return time: a stream still unwinding
// its detector work may read "running" — poll GET to observe the
// canceled state. Deleting a terminal stream is a no-op.
func (s *Server) handleDeleteStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown stream"))
		return
	}
	job.cancel()
	s.cfg.Logf("stream %s: cancel requested", job.id)
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, len(s.queue), cap(s.queue), s.jobs, s.streams, s.store)
}
