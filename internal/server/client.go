package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"smokescreen/internal/profile"
)

// Client talks to a smokescreend daemon. The zero HTTPClient uses
// http.DefaultClient; BaseURL is e.g. "http://127.0.0.1:8040".
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// PollInterval spaces job-status polls after a 202 (default 100ms).
	PollInterval time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes a JSON error body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &payload) == nil && payload.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", payload.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// GenerateRaw requests a profile and returns the raw stored JSON plus its
// canonical key. It follows the sync-then-poll protocol: a 200 returns
// immediately; a 202 (async request, or server-side wait timeout) polls
// the job until it finishes, then fetches the artifact.
func (c *Client) GenerateRaw(ctx context.Context, req GenRequest) ([]byte, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/profiles", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(httpReq)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		return payload, resp.Header.Get("X-Smokescreen-Key"), nil
	case http.StatusAccepted:
		var status JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			return nil, "", fmt.Errorf("server: decoding job status: %w", err)
		}
		if err := c.awaitJob(ctx, status.ID); err != nil {
			return nil, "", err
		}
		payload, err := c.GetProfile(ctx, status.Key)
		return payload, status.Key, err
	default:
		return nil, "", apiError(resp)
	}
}

// Generate is GenerateRaw decoded into a profile.Profile.
func (c *Client) Generate(ctx context.Context, req GenRequest) (*profile.Profile, string, error) {
	payload, key, err := c.GenerateRaw(ctx, req)
	if err != nil {
		return nil, "", err
	}
	prof, err := profile.LoadProfile(bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	return prof, key, nil
}

// GetProfile fetches a stored profile verbatim by key.
func (c *Client) GetProfile(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/profiles/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// CancelJob asks the daemon to cancel a job (DELETE /v1/jobs/{id}) and
// returns the job's status after the request. Canceling a terminal job is
// a no-op; a running job may still report "running" until its pipeline
// unwinds — poll Job to observe the canceled state.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// StartStream asks the daemon to begin a streaming ingest job (POST
// /v1/streams) and returns its initial status.
func (c *Client) StartStream(ctx context.Context, req StreamRequest) (*StreamStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/streams", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var status StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Stream fetches one stream job's status, including the live windowed
// profile and drift state.
func (c *Client) Stream(ctx context.Context, id string) (*StreamStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/streams/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// CancelStream asks the daemon to stop a stream (DELETE
// /v1/streams/{id}). Like CancelJob, the returned status reflects the
// moment of the request; poll Stream to observe the canceled state.
func (c *Client) CancelStream(ctx context.Context, id string) (*StreamStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/streams/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// AwaitStream polls a stream until it reaches a terminal state,
// returning the final status. A canceled stream is not an error from
// the poller's perspective — cancellation is the normal way to end an
// unbounded stream — so only failed streams return an error.
func (c *Client) AwaitStream(ctx context.Context, id string) (*StreamStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		status, err := c.Stream(ctx, id)
		if err != nil {
			return nil, err
		}
		switch status.State {
		case JobDone, JobCanceled:
			return status, nil
		case JobFailed:
			return status, fmt.Errorf("server: stream %s failed: %s", id, status.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// awaitJob polls a job until it reaches a terminal state.
func (c *Client) awaitJob(ctx context.Context, id string) error {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		status, err := c.Job(ctx, id)
		if err != nil {
			return err
		}
		switch status.State {
		case JobDone:
			return nil
		case JobFailed:
			return fmt.Errorf("server: job %s failed: %s", id, status.Error)
		case JobCanceled:
			return fmt.Errorf("server: job %s canceled: %s", id, status.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
