package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"smokescreen/internal/profile"
)

// Client talks to a smokescreend daemon. The zero HTTPClient uses
// http.DefaultClient; BaseURL is e.g. "http://127.0.0.1:8040".
//
// Every request retries transient failures — transport errors and the
// daemon's backpressure statuses (429 queue-full, 503 draining, 504) —
// with jittered exponential backoff, honoring a 429's Retry-After as the
// floor of the next delay. All endpoints are safe to retry: GETs and
// DELETEs are idempotent by design, and POST /v1/profiles is
// content-addressed (a replayed request coalesces onto the in-flight job
// or hits the store). A 502 — generation genuinely failed — is NOT
// retried: replaying it would re-run a deterministic failure.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// PollInterval spaces job-status polls after a 202 (default 100ms).
	PollInterval time.Duration
	// MaxRetries caps retry attempts after the first try (default 3;
	// negative disables retries).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (default 50ms); the
	// pre-jitter delay for retry k is base<<k, capped at RetryMaxDelay
	// (default 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// sleepFn and jitterFn are test seams: the backoff-schedule unit
	// test replaces them to run on a fake clock. Nil means real sleep
	// and equal-jitter.
	sleepFn  func(ctx context.Context, d time.Duration) error
	jitterFn func(d time.Duration) time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 3
	}
	return c.MaxRetries
}

// backoff returns the jittered delay before retry attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	ceiling := c.RetryMaxDelay
	if ceiling <= 0 {
		ceiling = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= ceiling || d <= 0 {
			d = ceiling
			break
		}
	}
	if d > ceiling {
		d = ceiling
	}
	if c.jitterFn != nil {
		return c.jitterFn(d)
	}
	return equalJitter(d)
}

// equalJitter keeps half the deterministic delay and randomizes the
// rest: enough spread to de-synchronize a herd of clients retrying the
// same 429, while never collapsing the delay to ~0 the way full jitter
// can.
func equalJitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// sleep waits d or until ctx is done.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.sleepFn != nil {
		return c.sleepFn(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableStatus: the daemon's "try again later" statuses. 429 is the
// bounded queue pushing back, 503 is drain, 504 an intermediary timeout.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// retryAfterHint parses a Retry-After header (delta-seconds or HTTP
// date) into a wait duration; 0 when absent or unparseable.
func retryAfterHint(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// doReq issues one API request with the retry policy. body is retained
// so retries replay identical bytes.
func (c *Client) doReq(ctx context.Context, method, url string, body []byte, contentType string) (*http.Response, error) {
	retries := c.maxRetries()
	for attempt := 0; ; attempt++ {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, reader)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.http().Do(req)
		var delay time.Duration
		var lastErr error
		switch {
		case err == nil && !retryableStatus(resp.StatusCode):
			return resp, nil
		case err == nil:
			hint := retryAfterHint(resp)
			lastErr = apiError(resp) // drains and summarizes the body
			resp.Body.Close()
			if attempt >= retries {
				return nil, lastErr
			}
			delay = c.backoff(attempt)
			if hint > delay {
				// The server knows its own backlog better than our
				// schedule does; its hint floors the wait.
				delay = hint
			}
		default:
			lastErr = err
			if attempt >= retries {
				return nil, lastErr
			}
			delay = c.backoff(attempt)
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
	}
}

// apiError decodes a JSON error body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &payload) == nil && payload.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", payload.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// GenerateRaw requests a profile and returns the raw stored JSON plus its
// canonical key. It follows the sync-then-poll protocol: a 200 returns
// immediately; a 202 (async request, or server-side wait timeout) polls
// the job until it finishes, then fetches the artifact.
func (c *Client) GenerateRaw(ctx context.Context, req GenRequest) ([]byte, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.doReq(ctx, http.MethodPost, c.BaseURL+"/v1/profiles", body, "application/json")
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		return payload, resp.Header.Get("X-Smokescreen-Key"), nil
	case http.StatusAccepted:
		var status JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			return nil, "", fmt.Errorf("server: decoding job status: %w", err)
		}
		if err := c.awaitJob(ctx, status.ID); err != nil {
			return nil, "", err
		}
		payload, err := c.GetProfile(ctx, status.Key)
		return payload, status.Key, err
	default:
		return nil, "", apiError(resp)
	}
}

// Generate is GenerateRaw decoded into a profile.Profile.
func (c *Client) Generate(ctx context.Context, req GenRequest) (*profile.Profile, string, error) {
	payload, key, err := c.GenerateRaw(ctx, req)
	if err != nil {
		return nil, "", err
	}
	prof, err := profile.LoadProfile(bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	return prof, key, nil
}

// GetProfile fetches a stored profile verbatim by key.
func (c *Client) GetProfile(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.doReq(ctx, http.MethodGet, c.BaseURL+"/v1/profiles/"+key, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.doReq(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// CancelJob asks the daemon to cancel a job (DELETE /v1/jobs/{id}) and
// returns the job's status after the request. Canceling a terminal job is
// a no-op; a running job may still report "running" until its pipeline
// unwinds — poll Job to observe the canceled state.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.doReq(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// StartStream asks the daemon to begin a streaming ingest job (POST
// /v1/streams) and returns its initial status.
func (c *Client) StartStream(ctx context.Context, req StreamRequest) (*StreamStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.doReq(ctx, http.MethodPost, c.BaseURL+"/v1/streams", body, "application/json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var status StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// Stream fetches one stream job's status, including the live windowed
// profile and drift state.
func (c *Client) Stream(ctx context.Context, id string) (*StreamStatus, error) {
	resp, err := c.doReq(ctx, http.MethodGet, c.BaseURL+"/v1/streams/"+id, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// CancelStream asks the daemon to stop a stream (DELETE
// /v1/streams/{id}). Like CancelJob, the returned status reflects the
// moment of the request; poll Stream to observe the canceled state.
func (c *Client) CancelStream(ctx context.Context, id string) (*StreamStatus, error) {
	resp, err := c.doReq(ctx, http.MethodDelete, c.BaseURL+"/v1/streams/"+id, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var status StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, err
	}
	return &status, nil
}

// AwaitStream polls a stream until it reaches a terminal state,
// returning the final status. A canceled stream is not an error from
// the poller's perspective — cancellation is the normal way to end an
// unbounded stream — so only failed streams return an error.
func (c *Client) AwaitStream(ctx context.Context, id string) (*StreamStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		status, err := c.Stream(ctx, id)
		if err != nil {
			return nil, err
		}
		switch status.State {
		case JobDone, JobCanceled:
			return status, nil
		case JobFailed:
			return status, fmt.Errorf("server: stream %s failed: %s", id, status.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// awaitJob polls a job until it reaches a terminal state.
func (c *Client) awaitJob(ctx context.Context, id string) error {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		status, err := c.Job(ctx, id)
		if err != nil {
			return err
		}
		switch status.State {
		case JobDone:
			return nil
		case JobFailed:
			return fmt.Errorf("server: job %s failed: %s", id, status.Error)
		case JobCanceled:
			return fmt.Errorf("server: job %s canceled: %s", id, status.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
