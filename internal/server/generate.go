package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"smokescreen/internal/core"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/query"
	"smokescreen/internal/stats"
)

// UnknownFieldError reports a request body carrying a field this server
// version does not know. Version skew across a fleet makes this a real
// operational case — a newer client (or a newer node forwarding a request)
// must get a diagnosable, typed rejection instead of a silently truncated
// request that generates (and caches, content-addressed forever) the
// wrong artifact.
type UnknownFieldError struct {
	Err error
}

func (e *UnknownFieldError) Error() string { return e.Err.Error() }
func (e *UnknownFieldError) Unwrap() error { return e.Err }

// DecodeGenRequest strictly decodes a profile-generation request:
// unknown fields are a typed UnknownFieldError, and trailing garbage
// after the JSON document is rejected. Every HTTP surface that accepts a
// GenRequest (the single-node daemon and the fleet nodes) decodes through
// this one function so skew behaves identically on every hop.
func DecodeGenRequest(r io.Reader) (GenRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req GenRequest
	if err := dec.Decode(&req); err != nil {
		// encoding/json has no typed unknown-field error; matching its
		// documented message rendering is the only detection available.
		//smokevet:ignore errcontract: stdlib json exposes unknown-field failures only through message text
		if strings.Contains(err.Error(), "unknown field") {
			return GenRequest{}, &UnknownFieldError{Err: fmt.Errorf("server: decoding request: %w", err)}
		}
		return GenRequest{}, fmt.Errorf("server: decoding request: %w", err)
	}
	var trailing struct{}
	if err := dec.Decode(&trailing); err != io.EOF {
		return GenRequest{}, fmt.Errorf("server: decoding request: trailing data after JSON body")
	}
	return req, nil
}

// GenRequest is the wire form of a profile-generation request: the
// analytical query plus the sweep and estimator knobs that shape the
// tradeoff curve. Fields with zero values take the paper's defaults, so
// two requests that spell the defaults differently still canonicalize to
// the same artifact key.
type GenRequest struct {
	// Query is the analytical query in Smokescreen's query language; its
	// RESOLUTION/REMOVE clauses fix the non-sampling axes of the sweep.
	Query string `json:"query"`
	// Seed is the root randomness seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Step and MaxFraction define the swept sample fractions
	// (defaults 0.01 and 0.2, the paper's candidate design).
	Step        float64 `json:"step,omitempty"`
	MaxFraction float64 `json:"max_fraction,omitempty"`
	// EarlyStop enables the paper's early stopping (0 = off).
	EarlyStop float64 `json:"early_stop,omitempty"`
	// Ladder names a fidelity ladder; when set the artifact is a ladder
	// profile (one point per tier) instead of a fraction sweep, and the
	// query's own intervention clauses must be empty — tiers carry them.
	Ladder string `json:"ladder,omitempty"`
	// Async asks POST /v1/profiles to return 202 with a job id instead of
	// waiting for generation to finish.
	Async bool `json:"async,omitempty"`
}

// Normalize fills defaulted fields in place, exactly as the POST handler
// does before keying. Routing layers (internal/fleetd) call it so that a
// request forwarded between nodes canonicalizes to the same key and the
// same wire bytes on every hop.
func (r *GenRequest) Normalize() { r.normalize() }

// normalize fills defaulted fields in place.
func (r *GenRequest) normalize() {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Step == 0 {
		r.Step = 0.01
	}
	if r.MaxFraction == 0 {
		r.MaxFraction = 0.2
	}
}

// Generator resolves requests to canonical artifact keys and runs the
// expensive generation stage. Key must be cheap (no detector work);
// Generate is what the job queue schedules.
type Generator interface {
	// Key resolves the request against the corpus and model registries and
	// returns the canonical content address of the artifact it would
	// produce, plus the canonical query string for job bookkeeping.
	Key(req GenRequest) (key, canonicalQuery string, err error)
	// Generate produces the artifact payload (profile JSON). It must be
	// deterministic: equal requests yield byte-identical payloads.
	Generate(ctx context.Context, req GenRequest) ([]byte, error)
}

// SystemGenerator generates fraction-axis tradeoff curves with the core
// Smokescreen system: construct a correction set when the query carries
// non-random interventions, then sweep the candidate fractions on the
// parallel engine and serialize the profile.
type SystemGenerator struct {
	// CorrectionLimit caps the correction-set fraction (default 0.2).
	CorrectionLimit float64
	// Parallelism bounds worker goroutines per generation; 0 or negative
	// means one per CPU (internal/parallel semantics applied by core).
	Parallelism int
}

// resolve parses and resolves the request, returning the parsed query,
// the bound spec, and the swept fractions.
func (g *SystemGenerator) resolve(req GenRequest) (*query.Query, *profile.Spec, []float64, error) {
	req.normalize()
	q, err := query.Parse(req.Query)
	if err != nil {
		return nil, nil, nil, err
	}
	// Canonicalize the restricted-class order so "REMOVE person,face" and
	// "REMOVE face,person" address (and generate) the same artifact;
	// removal is a set operation, so sorting cannot change results.
	sort.Slice(q.Setting.Restricted, func(i, j int) bool {
		return q.Setting.Restricted[i].String() < q.Setting.Restricted[j].String()
	})
	if req.Step <= 0 || req.MaxFraction <= 0 || req.MaxFraction > 1 || req.Step > req.MaxFraction {
		return nil, nil, nil, fmt.Errorf("server: invalid sweep [step %v, max %v]", req.Step, req.MaxFraction)
	}
	sys := core.New(core.WithSeed(req.Seed))
	spec, err := sys.Resolve(q)
	if err != nil {
		return nil, nil, nil, err
	}
	if req.Ladder != "" {
		if _, err := plan.LadderByName(req.Ladder, spec.Model); err != nil {
			return nil, nil, nil, err
		}
		if q.Setting.Resolution != 0 || len(q.Setting.Restricted) > 0 || q.Setting.ViewSpec() != "" {
			return nil, nil, nil, fmt.Errorf("server: ladder requests take their intervention axes from the ladder's tiers; drop the query's RESOLUTION/REMOVE/NOISE/BLUR/QUANTIZE/OCCLUDE clauses")
		}
	}
	return q, spec, plan.CandidateFractions(req.Step, req.MaxFraction), nil
}

// Key implements Generator.
func (g *SystemGenerator) Key(req GenRequest) (string, string, error) {
	req.normalize()
	q, spec, fractions, err := g.resolve(req)
	if err != nil {
		return "", "", err
	}
	ks := profile.KeySpec{
		VideoName:  spec.Video.Config.Name,
		FrameCount: spec.Video.NumFrames(),
		ModelName:  spec.Model.Name,
		Query:      q.String(),
		Family: profile.Family{
			Fractions:      fractions,
			Setting:        q.Setting,
			EarlyStopDelta: req.EarlyStop,
		},
		Ladder: req.Ladder,
		Params: q.Params(),
		Seed:   req.Seed,
	}
	return ks.CanonicalKey(), q.String(), nil
}

// Generate implements Generator.
func (g *SystemGenerator) Generate(ctx context.Context, req GenRequest) ([]byte, error) {
	req.normalize()
	q, spec, fractions, err := g.resolve(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	limit := g.CorrectionLimit
	if limit == 0 {
		limit = 0.2
	}
	sys := core.New(core.WithSeed(req.Seed), core.WithParallelism(g.Parallelism))
	if req.Ladder != "" {
		return g.generateLadder(ctx, sys, q, spec, req, limit)
	}
	opts := profile.SweepOptions{
		Fractions:      fractions,
		Setting:        q.Setting,
		EarlyStopDelta: req.EarlyStop,
	}
	base := q.Setting
	base.SampleFraction = fractions[0]
	if !base.IsRandomOnly(spec.Model) {
		// Non-random axes need a correction set for sound bounds.
		corr, err := profile.ConstructCorrectionCtx(ctx, spec, limit, stats.NewStream(req.Seed).Child(1))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("server: constructing correction set: %w", err)
		}
		opts.Correction = corr.Correction
	}
	// ctx is threaded through the whole plan/execute pipeline: a canceled
	// job stops detector work mid-sweep and returns the context error, so
	// no partial profile is ever serialized or stored.
	prof, err := sys.SweepProfileCtx(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Cancel raced the sweep's completion; drop the result rather than
		// publish after the caller's deadline.
		return nil, err
	}
	var buf bytes.Buffer
	if err := profile.SaveProfile(&buf, prof); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// generateLadder produces a ladder-profile payload: one point per tier of
// the request's named ladder. A correction set is constructed when any
// tier carries non-random axes (every built-in ladder does past its first
// rung).
func (g *SystemGenerator) generateLadder(ctx context.Context, sys *core.System, q *query.Query, spec *profile.Spec, req GenRequest, limit float64) ([]byte, error) {
	ladder, err := plan.LadderByName(req.Ladder, spec.Model)
	if err != nil {
		return nil, err
	}
	opts := profile.LadderOptions{Parallelism: g.Parallelism}
	for _, tier := range ladder.Tiers {
		if tier.Setting.IsRandomOnly(spec.Model) {
			continue
		}
		corr, err := profile.ConstructCorrectionCtx(ctx, spec, limit, stats.NewStream(req.Seed).Child(1))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("server: constructing correction set: %w", err)
		}
		opts.Correction = corr.Correction
		break
	}
	prof, err := sys.LadderProfileCtx(ctx, q, ladder, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := profile.SaveProfile(&buf, prof); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
