package server

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"smokescreen/internal/core"
	"smokescreen/internal/degrade"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/query"
	"smokescreen/internal/stats"
)

// GenRequest is the wire form of a profile-generation request: the
// analytical query plus the sweep and estimator knobs that shape the
// tradeoff curve. Fields with zero values take the paper's defaults, so
// two requests that spell the defaults differently still canonicalize to
// the same artifact key.
type GenRequest struct {
	// Query is the analytical query in Smokescreen's query language; its
	// RESOLUTION/REMOVE clauses fix the non-sampling axes of the sweep.
	Query string `json:"query"`
	// Seed is the root randomness seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Step and MaxFraction define the swept sample fractions
	// (defaults 0.01 and 0.2, the paper's candidate design).
	Step        float64 `json:"step,omitempty"`
	MaxFraction float64 `json:"max_fraction,omitempty"`
	// EarlyStop enables the paper's early stopping (0 = off).
	EarlyStop float64 `json:"early_stop,omitempty"`
	// Async asks POST /v1/profiles to return 202 with a job id instead of
	// waiting for generation to finish.
	Async bool `json:"async,omitempty"`
}

// Normalize fills defaulted fields in place, exactly as the POST handler
// does before keying. Routing layers (internal/fleetd) call it so that a
// request forwarded between nodes canonicalizes to the same key and the
// same wire bytes on every hop.
func (r *GenRequest) Normalize() { r.normalize() }

// normalize fills defaulted fields in place.
func (r *GenRequest) normalize() {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Step == 0 {
		r.Step = 0.01
	}
	if r.MaxFraction == 0 {
		r.MaxFraction = 0.2
	}
}

// Generator resolves requests to canonical artifact keys and runs the
// expensive generation stage. Key must be cheap (no detector work);
// Generate is what the job queue schedules.
type Generator interface {
	// Key resolves the request against the corpus and model registries and
	// returns the canonical content address of the artifact it would
	// produce, plus the canonical query string for job bookkeeping.
	Key(req GenRequest) (key, canonicalQuery string, err error)
	// Generate produces the artifact payload (profile JSON). It must be
	// deterministic: equal requests yield byte-identical payloads.
	Generate(ctx context.Context, req GenRequest) ([]byte, error)
}

// SystemGenerator generates fraction-axis tradeoff curves with the core
// Smokescreen system: construct a correction set when the query carries
// non-random interventions, then sweep the candidate fractions on the
// parallel engine and serialize the profile.
type SystemGenerator struct {
	// CorrectionLimit caps the correction-set fraction (default 0.2).
	CorrectionLimit float64
	// Parallelism bounds worker goroutines per generation; 0 or negative
	// means one per CPU (internal/parallel semantics applied by core).
	Parallelism int
}

// resolve parses and resolves the request, returning the parsed query,
// the bound spec, and the swept fractions.
func (g *SystemGenerator) resolve(req GenRequest) (*query.Query, *profile.Spec, []float64, error) {
	req.normalize()
	q, err := query.Parse(req.Query)
	if err != nil {
		return nil, nil, nil, err
	}
	// Canonicalize the restricted-class order so "REMOVE person,face" and
	// "REMOVE face,person" address (and generate) the same artifact;
	// removal is a set operation, so sorting cannot change results.
	sort.Slice(q.Setting.Restricted, func(i, j int) bool {
		return q.Setting.Restricted[i].String() < q.Setting.Restricted[j].String()
	})
	if q.Setting.NoiseSigma != 0 {
		return nil, nil, nil, fmt.Errorf("server: NOISE queries are not supported by the profile service (fraction sweeps fix resolution and removal only)")
	}
	if req.Step <= 0 || req.MaxFraction <= 0 || req.MaxFraction > 1 || req.Step > req.MaxFraction {
		return nil, nil, nil, fmt.Errorf("server: invalid sweep [step %v, max %v]", req.Step, req.MaxFraction)
	}
	sys := core.New(core.WithSeed(req.Seed))
	spec, err := sys.Resolve(q)
	if err != nil {
		return nil, nil, nil, err
	}
	return q, spec, plan.CandidateFractions(req.Step, req.MaxFraction), nil
}

// Key implements Generator.
func (g *SystemGenerator) Key(req GenRequest) (string, string, error) {
	req.normalize()
	q, spec, fractions, err := g.resolve(req)
	if err != nil {
		return "", "", err
	}
	ks := profile.KeySpec{
		VideoName:  spec.Video.Config.Name,
		FrameCount: spec.Video.NumFrames(),
		ModelName:  spec.Model.Name,
		Query:      q.String(),
		Family: profile.Family{
			Fractions:      fractions,
			Resolution:     q.Setting.Resolution,
			Restricted:     q.Setting.Restricted,
			EarlyStopDelta: req.EarlyStop,
		},
		Params: q.Params(),
		Seed:   req.Seed,
	}
	return ks.CanonicalKey(), q.String(), nil
}

// Generate implements Generator.
func (g *SystemGenerator) Generate(ctx context.Context, req GenRequest) ([]byte, error) {
	req.normalize()
	q, spec, fractions, err := g.resolve(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	limit := g.CorrectionLimit
	if limit == 0 {
		limit = 0.2
	}
	sys := core.New(core.WithSeed(req.Seed), core.WithParallelism(g.Parallelism))
	opts := profile.SweepOptions{
		Fractions:      fractions,
		Resolution:     q.Setting.Resolution,
		Restricted:     q.Setting.Restricted,
		EarlyStopDelta: req.EarlyStop,
	}
	base := degrade.Setting{
		SampleFraction: fractions[0],
		Resolution:     q.Setting.Resolution,
		Restricted:     q.Setting.Restricted,
	}
	if !base.IsRandomOnly(spec.Model) {
		// Non-random axes need a correction set for sound bounds.
		corr, err := profile.ConstructCorrectionCtx(ctx, spec, limit, stats.NewStream(req.Seed).Child(1))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("server: constructing correction set: %w", err)
		}
		opts.Correction = corr.Correction
	}
	// ctx is threaded through the whole plan/execute pipeline: a canceled
	// job stops detector work mid-sweep and returns the context error, so
	// no partial profile is ever serialized or stored.
	prof, err := sys.SweepProfileCtx(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Cancel raced the sweep's completion; drop the result rather than
		// publish after the caller's deadline.
		return nil, err
	}
	var buf bytes.Buffer
	if err := profile.SaveProfile(&buf, prof); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
