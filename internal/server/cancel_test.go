package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"smokescreen/internal/detect"
	"smokescreen/internal/store"
)

// deleteJob issues DELETE /v1/jobs/{id} and decodes the returned status.
func deleteJob(t *testing.T, url, id string) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
	}
	return status, resp.StatusCode
}

func startAsyncJob(t *testing.T, url, query string) JobStatus {
	t.Helper()
	resp := postProfile(t, url, GenRequest{Query: query, Async: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal(apiError(resp))
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

func awaitState(t *testing.T, client *Client, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		js, err := client.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == want {
			return *js
		}
		if terminal(js.State) {
			t.Fatalf("job %s reached %s (%s), want %s", id, js.State, js.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, js.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCanceledJobFreesPoolSlot is the satellite's acceptance scenario:
// with one worker, canceling the running job must release the slot so the
// queued job runs, and canceling a queued job must finish it immediately
// without ever reaching the generator.
func TestCanceledJobFreesPoolSlot(t *testing.T) {
	gen := &fakeGenerator{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts, st := newTestServer(t, gen, func(cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 4
	})
	defer close(gen.block)
	client := &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond}

	a := startAsyncJob(t, ts.URL, "SELECT AVG(count(car)) FROM small")
	<-gen.started // A occupies the only worker
	startAsyncJob(t, ts.URL, "SELECT SUM(count(car)) FROM small") // B, queued
	c := startAsyncJob(t, ts.URL, "SELECT MAX(count(car)) FROM small")

	// Cancel the queued job C: immediate terminal state, generator never
	// ran it, and its key is free for a retry.
	status, code := deleteJob(t, ts.URL, c.ID)
	if code != http.StatusOK || status.State != JobCanceled {
		t.Fatalf("cancel queued job: %d %+v", code, status)
	}
	if _, err := st.Get(c.Key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("canceled queued job left an artifact: %v", err)
	}

	// Cancel the running job A: its context fires, the generator returns,
	// and the freed worker must pick up B.
	if _, code := deleteJob(t, ts.URL, a.ID); code != http.StatusOK {
		t.Fatalf("cancel running job: HTTP %d", code)
	}
	final := awaitState(t, client, a.ID, JobCanceled)
	if final.Error == "" {
		t.Fatal("canceled job carries no error detail")
	}
	if _, err := st.Get(a.Key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("canceled running job left an artifact: %v", err)
	}
	select {
	case <-gen.started:
		// B is running: the canceled job released its pool slot.
	case <-time.After(5 * time.Second):
		t.Fatal("queued job never started after cancellation freed the worker")
	}
	if n := gen.generations.Load(); n != 2 {
		t.Fatalf("generator ran %d times, want 2 (A and B; C never ran)", n)
	}

	// DELETE is idempotent on terminal jobs and 404s on unknown ids.
	status, code = deleteJob(t, ts.URL, a.ID)
	if code != http.StatusOK || status.State != JobCanceled {
		t.Fatalf("re-delete terminal job: %d %+v", code, status)
	}
	if _, code := deleteJob(t, ts.URL, "job-999999"); code != http.StatusNotFound {
		t.Fatalf("delete unknown job: HTTP %d, want 404", code)
	}

	// The canceled key is retryable: a fresh POST creates a new job.
	a2 := startAsyncJob(t, ts.URL, "SELECT AVG(count(car)) FROM small")
	if a2.ID == a.ID {
		t.Fatal("retry after cancel reused the canceled job")
	}
}

// TestJobDeadlineFinishesCanceled pins the deadline path: a job that
// exceeds JobTimeout ends canceled, not failed.
func TestJobDeadlineFinishesCanceled(t *testing.T) {
	gen := &fakeGenerator{block: make(chan struct{}), started: make(chan struct{}, 1)}
	_, ts, _ := newTestServer(t, gen, func(cfg *Config) {
		cfg.JobTimeout = 30 * time.Millisecond
	})
	defer close(gen.block)
	client := &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond}

	job := startAsyncJob(t, ts.URL, "SELECT AVG(count(car)) FROM small")
	final := awaitState(t, client, job.ID, JobCanceled)
	if final.Error == "" {
		t.Fatal("deadline-canceled job carries no error detail")
	}
}

// TestCancelStopsDetectorWork drives the real generator and checks the
// ISSUE's acceptance criterion end to end: canceling a daemon job
// mid-generation stops detector work (the invocation counter stops
// advancing) and leaves no partial profile in the store.
func TestCancelStopsDetectorWork(t *testing.T) {
	if testing.Short() {
		t.Skip("real generation in -short mode")
	}
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)

	gen := &SystemGenerator{Parallelism: 1}
	_, ts, st := newTestServer(t, gen, func(cfg *Config) { cfg.Workers = 1 })
	client := &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond}

	// A wide sweep (250 fractions, half the corpus at max) keeps the
	// detect stage busy long enough to cancel mid-flight.
	resp := postProfile(t, ts.URL, GenRequest{
		Query: "SELECT AVG(count(car)) FROM small",
		Step:  0.002, MaxFraction: 0.5, Async: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal(apiError(resp))
	}
	var job JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Wait until the detector is demonstrably working, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for detect.Invocations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("generation never started detecting")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := client.CancelJob(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, client, job.ID, JobCanceled)
	if final.Error == "" {
		t.Fatal("canceled job carries no error detail")
	}

	// The invocation counter must stop advancing once the job is terminal.
	after := detect.Invocations()
	time.Sleep(50 * time.Millisecond)
	if now := detect.Invocations(); now != after {
		t.Fatalf("detector work continued after cancel: %d -> %d", after, now)
	}

	// No partial profile was persisted.
	if _, err := st.Get(job.Key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("canceled job left a stored profile: %v", err)
	}
}
