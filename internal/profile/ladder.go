package profile

import (
	"context"
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/outputs"
	"smokescreen/internal/parallel"
	"smokescreen/internal/plan"
	"smokescreen/internal/stats"
)

// LadderOptions configures fidelity-ladder profile generation.
type LadderOptions struct {
	// Correction repairs the bounds of non-random tiers (and tightens the
	// random-only ones). Required whenever any feasible tier carries a
	// non-random axis — which every built-in ladder does past its first
	// rung.
	Correction *estimate.Correction
	// Parallelism bounds the worker goroutines that materialise work units
	// and estimate tiers concurrently: 1 is sequential, 0 or negative means
	// one worker per CPU. Tier randomness derives from tier indices at plan
	// time and every estimate is a pure function of its plan and the stored
	// detector columns, so the profile is bit-for-bit identical at any
	// worker count.
	Parallelism int
}

// GenerateLadder produces a fidelity-ladder profile: one tradeoff point
// per tier, loosest first.
func GenerateLadder(spec *Spec, l plan.Ladder, opts LadderOptions, stream *stats.Stream) (*Profile, error) {
	return GenerateLadderCtx(context.Background(), spec, l, opts, stream)
}

// GenerateLadderCtx runs the plan/execute pipeline over a fidelity
// ladder. Planning validates the ladder (monotonicity included) and
// materialises a degradation plan per feasible tier; the detect stage
// dedups the tiers' detector work by (corpus view, resolution) — tiers
// observing the same pixel view at the same input size are evaluated once
// — and fills the column store; the estimate stage then computes each
// tier's bound from stored columns, repairing non-random tiers with the
// correction set. Infeasible tiers (sample exceeding the admissible pool)
// are absent from the profile rather than failing it.
func GenerateLadderCtx(ctx context.Context, spec *Spec, l plan.Ladder, opts LadderOptions, stream *stats.Stream) (*Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	lp, err := plan.BuildLadder(ctx, spec.Video, spec.Model, l, stream)
	if err != nil {
		return nil, err
	}
	var tasks []plan.LadderTask
	needsRepair := false
	for _, task := range lp.Tasks {
		if task.Plan == nil {
			continue
		}
		tasks = append(tasks, task)
		if !task.Tier.Setting.IsRandomOnly(spec.Model) {
			needsRepair = true
		}
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("profile: ladder %q has no feasible tier on %s", l.Name, spec.Video.Config.Name)
	}
	if needsRepair && opts.Correction == nil {
		return nil, fmt.Errorf("profile: ladder %q has non-random tiers; a correction set is required for sound bounds", l.Name)
	}

	// Detect stage: materialise the deduplicated (view, resolution) work
	// units. Each unit targets the corpus as its tiers observe it, so the
	// estimate stage's column reads hit the columns built here.
	units := lp.Units()
	stopDetect := plan.DetectTimer()
	err = parallel.ForCtx(ctx, len(units), opts.Parallelism, func(i int) error {
		effective := degrade.EffectiveVideo(spec.Video, units[i].Setting)
		return outputs.Ensure(ctx, effective, spec.Model, spec.Class, units[i].Resolution, units[i].Frames)
	})
	stopDetect()
	if err != nil {
		return nil, err
	}

	prof := &Profile{
		VideoName: spec.Video.Config.Name,
		ModelName: spec.Model.Name,
		Class:     spec.Class,
		Agg:       spec.Agg,
	}
	stopEstimate := plan.EstimateTimer()
	points, err := parallel.MapCtx(ctx, len(tasks), parallel.Workers(opts.Parallelism), func(i int) (Point, error) {
		task := tasks[i]
		est, err := spec.estimatePlan(ctx, task.Plan, opts.Correction)
		if err != nil {
			return Point{}, fmt.Errorf("profile: ladder %q tier %q: %w", l.Name, task.Tier.Name, err)
		}
		return Point{
			Setting:  task.Plan.Setting,
			Estimate: est,
			Repaired: opts.Correction != nil && !task.Tier.Setting.IsRandomOnly(spec.Model),
			Tier:     task.Tier.Name,
		}, nil
	})
	stopEstimate()
	if err != nil {
		return nil, err
	}
	prof.Points = points
	return prof, nil
}
