package profile

import (
	"context"
	"fmt"
	"math"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/outputs"
	"smokescreen/internal/parallel"
	"smokescreen/internal/plan"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// SweepOptions configures a sample-fraction sweep.
type SweepOptions struct {
	// Fractions to evaluate, ascending. Required.
	Fractions []float64
	// Setting fixes the non-sampling axes of the sweep — resolution,
	// removal, and the pixel axes (noise, blur, quantization, occlusion)
	// — via the degrade axis registry. Its SampleFraction is ignored.
	Setting degrade.Setting
	// Correction repairs bounds for non-random settings and tightens
	// random ones. Required when any non-random axis degrades.
	Correction *estimate.Correction
	// EarlyStopDelta stops the sweep when the bound improves by less than
	// this amount between consecutive fractions (the paper's early
	// stopping, Section 3.3.2). Zero disables early stopping.
	EarlyStopDelta float64
	// Parallelism bounds the worker goroutines used to evaluate fraction
	// points concurrently: 1 (or an early-stopping sweep, which is
	// inherently sequential) evaluates points in order on the calling
	// goroutine; 0 or negative means one worker per CPU. The sample is
	// drawn once up front and every point's estimate is a pure function of
	// its plan and the (deterministic) detector-output columns, so the
	// profile is bit-for-bit identical at any worker count.
	Parallelism int
}

// SweepFractions produces a fraction-axis profile. Sampling is nested: one
// permutation of the admissible pool is drawn and each fraction takes a
// prefix, so model outputs computed for a low rate are reused at every
// higher rate — the paper's reuse strategy. A prefix of a uniform random
// permutation is itself a uniform without-replacement sample, so the
// estimator assumptions hold at every step.
func SweepFractions(spec *Spec, opts SweepOptions, stream *stats.Stream) (*Profile, error) {
	return SweepFractionsCtx(context.Background(), spec, opts, stream)
}

// SweepFractionsCtx is SweepFractions with cancellation, running the
// three-stage pipeline: plan the sweep's tasks (internal/plan), materialise
// the deduplicated detector work unit in the column store, then estimate
// every task from stored columns. A done ctx aborts between (and inside)
// stages; no partial profile is returned.
func SweepFractionsCtx(ctx context.Context, spec *Spec, opts SweepOptions, stream *stats.Stream) (*Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Fractions) == 0 {
		return nil, fmt.Errorf("profile: sweep requires fractions")
	}
	for i := 1; i < len(opts.Fractions); i++ {
		if opts.Fractions[i] <= opts.Fractions[i-1] {
			return nil, fmt.Errorf("profile: fractions must be ascending")
		}
	}
	base := opts.Setting
	base.SampleFraction = opts.Fractions[0]
	if err := base.Validate(spec.Model); err != nil {
		return nil, err
	}
	if !base.IsRandomOnly(spec.Model) && opts.Correction == nil {
		return nil, fmt.Errorf("profile: sweep over non-random setting %v requires a correction set", base)
	}

	sw, err := plan.BuildSweep(ctx, spec.Video, spec.Model, plan.SweepSpec{
		Fractions: opts.Fractions,
		Base:      opts.Setting,
	}, stream)
	if err != nil {
		return nil, err
	}
	if len(sw.Tasks) == 0 {
		return nil, fmt.Errorf("profile: no feasible fraction under %v (admissible pool %d of %d)",
			base, len(sw.Admissible), spec.Video.NumFrames())
	}
	return spec.execSweep(ctx, sw, opts)
}

// execSweep is the executor for one planned sweep: the detect and estimate
// stages of the pipeline. Without early stopping the stages are distinct —
// one Ensure call materialises the sweep's single deduplicated work unit
// (the largest task's frame set; nesting makes every smaller task a
// prefix), then tasks fan out over the worker pool reading stored columns.
// Early stopping is inherently sequential and lazy: each point's detector
// work happens on demand so stopping actually saves invocations, and the
// interleaved detection is attributed to the estimate stage.
func (s *Spec) execSweep(ctx context.Context, sw *plan.Sweep, opts SweepOptions) (*Profile, error) {
	prof := &Profile{
		VideoName: s.Video.Config.Name,
		ModelName: s.Model.Name,
		Class:     s.Class,
		Agg:       s.Agg,
	}
	repaired := opts.Correction != nil && !sw.RandomOnly

	if opts.EarlyStopDelta <= 0 {
		// The detect stage targets the corpus as the sweep's setting
		// observes it: for pixel-axis settings that is the cached view, so
		// the estimate stage's column reads hit the columns built here.
		effective := degrade.EffectiveVideo(s.Video, sw.Tasks[len(sw.Tasks)-1].Plan.Setting)
		stopDetect := plan.DetectTimer()
		err := outputs.Ensure(ctx, effective, s.Model, s.Class, sw.Resolution, sw.Frames())
		stopDetect()
		if err != nil {
			return nil, err
		}

		stopEstimate := plan.EstimateTimer()
		points, err := parallel.MapCtx(ctx, len(sw.Tasks), parallel.Workers(opts.Parallelism), func(i int) (Point, error) {
			est, err := s.estimatePlan(ctx, sw.Tasks[i].Plan, opts.Correction)
			if err != nil {
				return Point{}, err
			}
			return Point{Setting: sw.Tasks[i].Plan.Setting, Estimate: est, Repaired: repaired}, nil
		})
		stopEstimate()
		if err != nil {
			return nil, err
		}
		prof.Points = points
		return prof, nil
	}

	prevBound := math.Inf(1)
	for _, task := range sw.Tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stopEstimate := plan.EstimateTimer()
		est, err := s.estimatePlan(ctx, task.Plan, opts.Correction)
		stopEstimate()
		if err != nil {
			return nil, err
		}
		prof.Points = append(prof.Points, Point{
			Setting:  task.Plan.Setting,
			Estimate: est,
			Repaired: repaired,
		})
		if prevBound-est.ErrBound < opts.EarlyStopDelta && est.ErrBound < 1 {
			break
		}
		prevBound = est.ErrBound
	}
	return prof, nil
}

// Hypercube is the paper's degradation hypercube: error bounds over the
// full (f, p, c) candidate grid. Administrators view 2D slices obtained by
// fixing the other dimensions (initially at their loosest values).
type Hypercube struct {
	VideoName   string
	ModelName   string
	Class       scene.Class
	Agg         estimate.Agg
	Fractions   []float64
	Resolutions []int           // loosest (native) first
	Combos      [][]scene.Class // loosest (none) first
	// Bounds[ci][ri][fi] is the error bound; NaN marks infeasible cells
	// (sample larger than the admissible pool).
	Bounds [][][]float64
}

// HypercubeOptions configures hypercube generation.
type HypercubeOptions struct {
	// Fractions is the sample-fraction axis of the candidate grid. Required.
	Fractions []float64
	// Correction repairs the non-random cells; required (the grid always
	// contains non-random interventions).
	Correction *estimate.Correction
	// EarlyStopDelta applies the paper's early stopping to every fraction
	// sweep (unevaluated cells stay NaN). Zero disables it.
	EarlyStopDelta float64
	// Parallelism bounds the worker goroutines that materialise work units
	// and evaluate (combo, resolution) cells concurrently: 1 is sequential,
	// 0 or negative means one worker per CPU. Every cell derives its
	// randomness from a stats.Stream child keyed by its grid coordinates
	// and writes bounds into its own row, so the hypercube is bit-for-bit
	// identical at any worker count and under any worker completion order.
	Parallelism int
}

// GenerateHypercube evaluates the full candidate grid (Problem 2)
// sequentially. Each (combo, resolution) pair reuses one nested sample.
// It is the reference path; GenerateHypercubeOpts fans the grid out across
// a bounded worker pool and produces identical bytes.
func GenerateHypercube(spec *Spec, fractions []float64, corr *estimate.Correction, stream *stats.Stream, earlyStopDelta float64) (*Hypercube, error) {
	return GenerateHypercubeOpts(spec, HypercubeOptions{
		Fractions:      fractions,
		Correction:     corr,
		EarlyStopDelta: earlyStopDelta,
		Parallelism:    1,
	}, stream)
}

// GenerateHypercubeOpts evaluates the full candidate grid (Problem 2). A
// correction set is required because the grid includes non-random
// interventions.
func GenerateHypercubeOpts(spec *Spec, opts HypercubeOptions, stream *stats.Stream) (*Hypercube, error) {
	return GenerateHypercubeCtx(context.Background(), spec, opts, stream)
}

// GenerateHypercubeCtx runs the full plan/execute pipeline over the grid.
// Planning enumerates every cell's sweep up front (one presence protocol
// per restricted class, one nested sample per cell); the detect stage
// dedups the cells' detector work into per-resolution units — the frames
// several class combos share are evaluated once — and materialises them in
// the column store; the estimate stage then computes every cell's row from
// stored columns. Cells whose estimates fail render as NaN rows (matching
// the legacy behaviour for infeasible cells), but a cancelled ctx aborts
// the whole generation: detector work stops and an error is returned so
// callers never persist a partial hypercube.
func GenerateHypercubeCtx(ctx context.Context, spec *Spec, opts HypercubeOptions, stream *stats.Stream) (*Hypercube, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Correction == nil {
		return nil, fmt.Errorf("profile: hypercube generation requires a correction set")
	}
	hp, err := plan.BuildHypercube(ctx, spec.Video, spec.Model, opts.Fractions, stream)
	if err != nil {
		return nil, err
	}
	cube := &Hypercube{
		VideoName:   spec.Video.Config.Name,
		ModelName:   spec.Model.Name,
		Class:       spec.Class,
		Agg:         spec.Agg,
		Fractions:   opts.Fractions,
		Resolutions: hp.Resolutions,
		Combos:      hp.Combos,
	}
	for range hp.Combos {
		cube.Bounds = append(cube.Bounds, make([][]float64, len(hp.Resolutions)))
	}

	if opts.EarlyStopDelta <= 0 {
		// Detect stage: materialise the deduplicated per-resolution work
		// units. Early-stopping sweeps skip this — they must detect lazily,
		// point by point, or stopping would save nothing.
		units := hp.Units()
		stopDetect := plan.DetectTimer()
		err := parallel.ForCtx(ctx, len(units), opts.Parallelism, func(i int) error {
			return outputs.Ensure(ctx, spec.Video, spec.Model, spec.Class, units[i].Resolution, units[i].Frames)
		})
		stopDetect()
		if err != nil {
			return nil, err
		}
	}

	// Estimate stage: one task per planned cell, each owning its row.
	err = parallel.ForCtx(ctx, len(hp.Cells), opts.Parallelism, func(k int) error {
		cell := &hp.Cells[k]
		row := make([]float64, len(opts.Fractions))
		for fi := range row {
			row[fi] = math.NaN()
		}
		if cell.Sweep != nil {
			prof, err := spec.execSweep(ctx, cell.Sweep, SweepOptions{
				Fractions: opts.Fractions,
				Setting: degrade.Setting{
					Resolution: hp.Resolutions[cell.RI],
					Restricted: hp.Combos[cell.CI],
				},
				Correction:     opts.Correction,
				EarlyStopDelta: opts.EarlyStopDelta,
				// The grid is the outer fan-out; keep each sweep sequential
				// so concurrency stays bounded by opts.Parallelism.
				Parallelism: 1,
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// Estimator failures render as a NaN row, like the legacy
				// per-cell sweep failures.
			} else {
				for _, pt := range prof.Points {
					for fi, f := range opts.Fractions {
						if f == pt.Setting.SampleFraction {
							row[fi] = pt.Estimate.ErrBound
						}
					}
				}
			}
		}
		cube.Bounds[cell.CI][cell.RI] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cube, nil
}

// SliceByFraction returns the error bounds across fractions with the
// other axes fixed.
func (h *Hypercube) SliceByFraction(ci, ri int) []float64 {
	return h.Bounds[ci][ri]
}

// SliceByResolution returns the error bounds across resolutions with
// combo and fraction fixed.
func (h *Hypercube) SliceByResolution(ci, fi int) []float64 {
	out := make([]float64, len(h.Resolutions))
	for ri := range h.Resolutions {
		out[ri] = h.Bounds[ci][ri][fi]
	}
	return out
}

// ChooseTradeoff returns the most degraded feasible setting whose bound
// does not exceed maxErr. Degradation is ranked by processed pixel volume
// (f x p^2) with ties broken toward more restricted classes; this is one
// reasonable administrator policy and is deterministic.
func (h *Hypercube) ChooseTradeoff(maxErr float64) (degrade.Setting, bool) {
	var best degrade.Setting
	bestScore := math.Inf(1)
	found := false
	for ci, combo := range h.Combos {
		for ri, res := range h.Resolutions {
			for fi, f := range h.Fractions {
				bound := h.Bounds[ci][ri][fi]
				if math.IsNaN(bound) || bound > maxErr {
					continue
				}
				score := f * float64(res) * float64(res)
				// Prefer more removal at equal pixel volume.
				score -= float64(len(combo)) * 1e-9
				if score < bestScore {
					bestScore = score
					best = degrade.Setting{SampleFraction: f, Resolution: res, Restricted: combo}
					found = true
				}
			}
		}
	}
	return best, found
}
