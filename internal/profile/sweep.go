package profile

import (
	"fmt"
	"math"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/parallel"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// SweepOptions configures a sample-fraction sweep.
type SweepOptions struct {
	// Fractions to evaluate, ascending. Required.
	Fractions []float64
	// Resolution and Restricted fix the non-sampling axes of the sweep.
	Resolution int
	Restricted []scene.Class
	// Correction repairs bounds for non-random settings and tightens
	// random ones. Required when Resolution or Restricted degrade.
	Correction *estimate.Correction
	// EarlyStopDelta stops the sweep when the bound improves by less than
	// this amount between consecutive fractions (the paper's early
	// stopping, Section 3.3.2). Zero disables early stopping.
	EarlyStopDelta float64
	// Parallelism bounds the worker goroutines used to evaluate fraction
	// points concurrently: 1 (or an early-stopping sweep, which is
	// inherently sequential) evaluates points in order on the calling
	// goroutine; 0 or negative means one worker per CPU. The sample is
	// drawn once up front and every point's estimate is a pure function of
	// its plan and the (deterministic) detector caches, so the profile is
	// bit-for-bit identical at any worker count.
	Parallelism int
}

// SweepFractions produces a fraction-axis profile. Sampling is nested: one
// permutation of the admissible pool is drawn and each fraction takes a
// prefix, so model outputs computed for a low rate are reused at every
// higher rate — the paper's reuse strategy. A prefix of a uniform random
// permutation is itself a uniform without-replacement sample, so the
// estimator assumptions hold at every step.
func SweepFractions(spec *Spec, opts SweepOptions, stream *stats.Stream) (*Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Fractions) == 0 {
		return nil, fmt.Errorf("profile: sweep requires fractions")
	}
	for i := 1; i < len(opts.Fractions); i++ {
		if opts.Fractions[i] <= opts.Fractions[i-1] {
			return nil, fmt.Errorf("profile: fractions must be ascending")
		}
	}
	base := degrade.Setting{
		SampleFraction: opts.Fractions[0],
		Resolution:     opts.Resolution,
		Restricted:     opts.Restricted,
	}
	if err := base.Validate(spec.Model); err != nil {
		return nil, err
	}
	randomOnly := base.IsRandomOnly(spec.Model)
	if !randomOnly && opts.Correction == nil {
		return nil, fmt.Errorf("profile: sweep over non-random setting %v requires a correction set", base)
	}

	admissible := degrade.AdmissibleFrames(spec.Video, opts.Restricted)
	perm := stream.Perm(len(admissible))
	resolution := base.ResolveResolution(spec.Model)
	n := spec.Video.NumFrames()

	prof := &Profile{
		VideoName: spec.Video.Config.Name,
		ModelName: spec.Model.Name,
		Class:     spec.Class,
		Agg:       spec.Agg,
	}

	// Materialise the nested plan for every feasible fraction up front; the
	// estimate of each point is then a pure function of its plan.
	var plans []*degrade.Plan
	for _, f := range opts.Fractions {
		want := int(float64(n)*f + 0.5)
		if want < 1 {
			want = 1
		}
		if want > len(admissible) {
			break // remaining fractions are infeasible under image removal
		}
		setting := degrade.Setting{SampleFraction: f, Resolution: opts.Resolution, Restricted: opts.Restricted}
		plan := &degrade.Plan{
			Setting:    setting,
			Resolution: resolution,
			Admissible: admissible,
			Total:      n,
		}
		plan.Sampled = make([]int, want)
		for i := 0; i < want; i++ {
			plan.Sampled[i] = admissible[perm[i]]
		}
		plans = append(plans, plan)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("profile: no feasible fraction under %v (admissible pool %d of %d)",
			base, len(admissible), n)
	}
	repaired := opts.Correction != nil && !randomOnly

	if workers := parallel.Workers(opts.Parallelism); workers > 1 && opts.EarlyStopDelta <= 0 {
		// Early stopping decides each point from its predecessor's bound,
		// so only non-stopping sweeps fan out. Points land in their
		// per-index slots; the assembled profile is identical to the
		// sequential order.
		points, err := parallel.Map(len(plans), workers, func(i int) (Point, error) {
			est, err := spec.estimatePlan(plans[i], opts.Correction)
			if err != nil {
				return Point{}, err
			}
			return Point{Setting: plans[i].Setting, Estimate: est, Repaired: repaired}, nil
		})
		if err != nil {
			return nil, err
		}
		prof.Points = points
		return prof, nil
	}

	prevBound := math.Inf(1)
	for _, plan := range plans {
		est, err := spec.estimatePlan(plan, opts.Correction)
		if err != nil {
			return nil, err
		}
		prof.Points = append(prof.Points, Point{
			Setting:  plan.Setting,
			Estimate: est,
			Repaired: repaired,
		})
		if opts.EarlyStopDelta > 0 && prevBound-est.ErrBound < opts.EarlyStopDelta && est.ErrBound < 1 {
			break
		}
		prevBound = est.ErrBound
	}
	return prof, nil
}

// Hypercube is the paper's degradation hypercube: error bounds over the
// full (f, p, c) candidate grid. Administrators view 2D slices obtained by
// fixing the other dimensions (initially at their loosest values).
type Hypercube struct {
	VideoName   string
	ModelName   string
	Class       scene.Class
	Agg         estimate.Agg
	Fractions   []float64
	Resolutions []int           // loosest (native) first
	Combos      [][]scene.Class // loosest (none) first
	// Bounds[ci][ri][fi] is the error bound; NaN marks infeasible cells
	// (sample larger than the admissible pool).
	Bounds [][][]float64
}

// HypercubeOptions configures hypercube generation.
type HypercubeOptions struct {
	// Fractions is the sample-fraction axis of the candidate grid. Required.
	Fractions []float64
	// Correction repairs the non-random cells; required (the grid always
	// contains non-random interventions).
	Correction *estimate.Correction
	// EarlyStopDelta applies the paper's early stopping to every fraction
	// sweep (unevaluated cells stay NaN). Zero disables it.
	EarlyStopDelta float64
	// Parallelism bounds the worker goroutines that evaluate (combo,
	// resolution) cells concurrently: 1 is sequential, 0 or negative means
	// one worker per CPU. Every cell derives its randomness from a
	// stats.Stream child keyed by its grid coordinates and writes bounds
	// into its own row, so the hypercube is bit-for-bit identical at any
	// worker count and under any worker completion order.
	Parallelism int
}

// GenerateHypercube evaluates the full candidate grid (Problem 2)
// sequentially. Each (combo, resolution) pair reuses one nested sample.
// It is the reference path; GenerateHypercubeOpts fans the grid out across
// a bounded worker pool and produces identical bytes.
func GenerateHypercube(spec *Spec, fractions []float64, corr *estimate.Correction, stream *stats.Stream, earlyStopDelta float64) (*Hypercube, error) {
	return GenerateHypercubeOpts(spec, HypercubeOptions{
		Fractions:      fractions,
		Correction:     corr,
		EarlyStopDelta: earlyStopDelta,
		Parallelism:    1,
	}, stream)
}

// GenerateHypercubeOpts evaluates the full candidate grid (Problem 2). A
// correction set is required because the grid includes non-random
// interventions. Cells fan out across opts.Parallelism workers; the model
// output caches in internal/detect dedupe the underlying detector work, so
// the dominant cost parallelises across the degradation settings while the
// profile itself stays deterministic.
func GenerateHypercubeOpts(spec *Spec, opts HypercubeOptions, stream *stats.Stream) (*Hypercube, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Correction == nil {
		return nil, fmt.Errorf("profile: hypercube generation requires a correction set")
	}
	combos := degrade.ClassCombos()
	resolutions := degrade.CandidateResolutions(spec.Model)
	cube := &Hypercube{
		VideoName:   spec.Video.Config.Name,
		ModelName:   spec.Model.Name,
		Class:       spec.Class,
		Agg:         spec.Agg,
		Fractions:   opts.Fractions,
		Resolutions: resolutions,
		Combos:      combos,
	}
	for range combos {
		cube.Bounds = append(cube.Bounds, make([][]float64, len(resolutions)))
	}

	// One task per (combo, resolution) cell. Each task owns its row and its
	// stream child, so tasks share no mutable state; image-removal combos
	// additionally share the detect caches, which are safe and
	// deterministic under concurrency.
	type cell struct{ ci, ri int }
	cells := make([]cell, 0, len(combos)*len(resolutions))
	for ci := range combos {
		for ri := range resolutions {
			cells = append(cells, cell{ci, ri})
		}
	}
	parallel.For(len(cells), opts.Parallelism, func(k int) {
		ci, ri := cells[k].ci, cells[k].ri
		row := make([]float64, len(opts.Fractions))
		for fi := range row {
			row[fi] = math.NaN()
		}
		prof, err := SweepFractions(spec, SweepOptions{
			Fractions:      opts.Fractions,
			Resolution:     resolutions[ri],
			Restricted:     combos[ci],
			Correction:     opts.Correction,
			EarlyStopDelta: opts.EarlyStopDelta,
			// The grid is the outer fan-out; keep each sweep sequential so
			// concurrency stays bounded by opts.Parallelism.
			Parallelism: 1,
		}, stream.ChildN(uint64(ci), uint64(ri)))
		if err == nil {
			for _, pt := range prof.Points {
				for fi, f := range opts.Fractions {
					if f == pt.Setting.SampleFraction {
						row[fi] = pt.Estimate.ErrBound
					}
				}
			}
		}
		cube.Bounds[ci][ri] = row
	})
	return cube, nil
}

// SliceByFraction returns the error bounds across fractions with the
// other axes fixed.
func (h *Hypercube) SliceByFraction(ci, ri int) []float64 {
	return h.Bounds[ci][ri]
}

// SliceByResolution returns the error bounds across resolutions with
// combo and fraction fixed.
func (h *Hypercube) SliceByResolution(ci, fi int) []float64 {
	out := make([]float64, len(h.Resolutions))
	for ri := range h.Resolutions {
		out[ri] = h.Bounds[ci][ri][fi]
	}
	return out
}

// ChooseTradeoff returns the most degraded feasible setting whose bound
// does not exceed maxErr. Degradation is ranked by processed pixel volume
// (f x p^2) with ties broken toward more restricted classes; this is one
// reasonable administrator policy and is deterministic.
func (h *Hypercube) ChooseTradeoff(maxErr float64) (degrade.Setting, bool) {
	var best degrade.Setting
	bestScore := math.Inf(1)
	found := false
	for ci, combo := range h.Combos {
		for ri, res := range h.Resolutions {
			for fi, f := range h.Fractions {
				bound := h.Bounds[ci][ri][fi]
				if math.IsNaN(bound) || bound > maxErr {
					continue
				}
				score := f * float64(res) * float64(res)
				// Prefer more removal at equal pixel volume.
				score -= float64(len(combo)) * 1e-9
				if score < bestScore {
					bestScore = score
					best = degrade.Setting{SampleFraction: f, Resolution: res, Restricted: combo}
					found = true
				}
			}
		}
	}
	return best, found
}
