package profile

import (
	"testing"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func TestRunUntilValidation(t *testing.T) {
	s := testSpec(estimate.AVG)
	stream := stats.NewStream(1)
	if _, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0, 0.5, stream); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0.2, 0, stream); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := RunUntil(s, degrade.Setting{SampleFraction: 1, Resolution: 160}, 0.2, 0.5, stream); err == nil {
		t.Fatal("non-random setting accepted")
	}
	maxSpec := testSpec(estimate.MAX)
	if _, err := RunUntil(maxSpec, degrade.Setting{SampleFraction: 1}, 0.2, 0.5, stream); err == nil {
		t.Fatal("MAX adaptive accepted")
	}
}

func TestRunUntilMeetsTarget(t *testing.T) {
	s := testSpec(estimate.AVG)
	res, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0.35, 1, stats.NewStream(501))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("target not met within the full corpus: %+v", res)
	}
	if res.Estimate.ErrBound > 0.35 {
		t.Fatalf("stopped with bound %v above target", res.Estimate.ErrBound)
	}
	if res.FramesUsed >= s.Video.NumFrames() {
		t.Fatal("adaptive run used the whole corpus")
	}
	// The answer must actually be good: the any-time guarantee covers the
	// stopped estimate.
	trueErr, err := s.TrueErrorOf(res.Estimate.Value)
	if err != nil {
		t.Fatal(err)
	}
	if trueErr > res.Estimate.ErrBound {
		t.Fatalf("stopped bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}

func TestRunUntilEasierTargetsStopEarlier(t *testing.T) {
	s := testSpec(estimate.AVG)
	loose, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0.6, 1, stats.NewStream(503))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0.3, 1, stats.NewStream(503))
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Met || !tight.Met {
		t.Fatalf("targets unmet: %+v %+v", loose, tight)
	}
	if loose.FramesUsed >= tight.FramesUsed {
		t.Fatalf("loose target used %d frames, tight used %d", loose.FramesUsed, tight.FramesUsed)
	}
}

func TestRunUntilBudgetExhaustion(t *testing.T) {
	s := testSpec(estimate.AVG)
	res, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0.01, 0.02, stats.NewStream(507))
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("1% target met with a 2% budget — implausibly tight")
	}
	budget := int(float64(s.Video.NumFrames()) * 0.02)
	if res.FramesUsed != budget {
		t.Fatalf("used %d frames, budget %d", res.FramesUsed, budget)
	}
}

func TestRunUntilRespectsImageRemovalPool(t *testing.T) {
	// Adaptive runs with removal stay inside the admissible pool... but
	// removal is a non-random intervention, so it must be rejected.
	s := testSpec(estimate.AVG)
	setting := degrade.Setting{SampleFraction: 1, Restricted: []scene.Class{scene.Face}}
	if _, err := RunUntil(s, setting, 0.3, 0.5, stats.NewStream(509)); err == nil {
		t.Fatal("image-removal adaptive run accepted")
	}
}

func TestRunUntilCount(t *testing.T) {
	s := testSpec(estimate.COUNT)
	res, err := RunUntil(s, degrade.Setting{SampleFraction: 1}, 0.2, 1, stats.NewStream(511))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("COUNT target unmet: %+v", res)
	}
	trueErr, err := s.TrueErrorOf(res.Estimate.Value)
	if err != nil {
		t.Fatal(err)
	}
	if trueErr > res.Estimate.ErrBound {
		t.Fatalf("COUNT stopped bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}
