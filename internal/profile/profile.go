// Package profile implements the paper's profile-generation machinery
// (Sections 2.3 and 3.3): degradation-accuracy profiles (tradeoff curves),
// the degradation hypercube over (f, p, c) with 2D slices, correction-set
// construction with the 1%-growth / 2%-elbow heuristic, fraction sweeps
// with early stopping and model-output reuse, and profile similarity for
// the transfer-from-similar-video fallback.
package profile

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/outputs"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// Spec identifies the analytical query a profile is generated for: the
// paper's (D, F_model, F_A) triple plus estimator parameters.
type Spec struct {
	Video  *scene.Video
	Model  *detect.Model
	Class  scene.Class  // the class whose per-frame count F_model reports
	Agg    estimate.Agg // aggregate function F_A
	Params estimate.Params
	// Predicate transforms per-frame counts before aggregation. COUNT
	// queries use it to turn counts into indicator values; nil applies
	// the aggregate to the raw counts (with a contains-object default for
	// COUNT).
	Predicate func(float64) float64
}

// Validate reports an inconsistent specification.
func (s *Spec) Validate() error {
	if s.Video == nil || s.Model == nil {
		return fmt.Errorf("profile: spec requires a video and a model")
	}
	if !s.Model.CanDetect(s.Class) {
		return fmt.Errorf("profile: model %s cannot detect %v", s.Model.Name, s.Class)
	}
	return nil
}

// transform applies the spec's predicate (or the COUNT default) to a raw
// count.
func (s *Spec) transform(x float64) float64 {
	if s.Predicate != nil {
		return s.Predicate(x)
	}
	if s.Agg == estimate.COUNT {
		if x > 0 {
			return 1
		}
		return 0
	}
	return x
}

// TruePopulation returns the transformed per-frame outputs of the
// non-degraded video: the X_1..X_N series whose aggregate is the paper's
// ground truth.
func (s *Spec) TruePopulation() []float64 {
	// The only error Full can return is context cancellation, which a
	// Background root cannot produce; a failure here is a bug, not a
	// condition to degrade through.
	raw, err := outputs.Full(context.Background(), s.Video, s.Model, s.Class, s.Model.NativeInput)
	if err != nil {
		panic(fmt.Sprintf("profile: outputs.Full over a Background context failed: %v", err))
	}
	out := make([]float64, len(raw))
	for i, x := range raw {
		out[i] = s.transform(x)
	}
	return out
}

// TrueAnswer computes the exact aggregate over the non-degraded corpus.
func (s *Spec) TrueAnswer() (float64, error) {
	return estimate.TrueAnswer(s.Agg, s.TruePopulation(), s.Params)
}

// TrueErrorOf computes the paper's accuracy metric for an approximate
// answer against the non-degraded corpus.
func (s *Spec) TrueErrorOf(approx float64) (float64, error) {
	return estimate.TrueError(s.Agg, approx, s.TruePopulation(), s.Params)
}

// sampleValuesCtx materialises the transformed outputs for a degradation
// plan, reading (and lazily filling) the detector-output column store.
func (s *Spec) sampleValuesCtx(ctx context.Context, plan *degrade.Plan) ([]float64, error) {
	raw, err := degrade.SampleOutputsCtx(ctx, s.Video, s.Model, s.Class, plan)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(raw))
	for i, x := range raw {
		out[i] = s.transform(x)
	}
	return out, nil
}

// outputsAtCtx returns the transformed outputs for specific frames at the
// model's native resolution, evaluating the detector lazily — correction
// sets only ever touch the frames they sample.
func (s *Spec) outputsAtCtx(ctx context.Context, frames []int) ([]float64, error) {
	raw, err := outputs.At(ctx, s.Video, s.Model, s.Class, s.Model.NativeInput, frames)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(raw))
	for i, x := range raw {
		out[i] = s.transform(x)
	}
	return out, nil
}

// EstimateSetting computes the approximate answer and error bound under
// one intervention setting (Problem 1 of the paper). Non-random settings
// require a correction set; passing nil for one returns an error because
// the uncorrected bound would be unsound. For random-only settings with a
// correction set, the tighter of the two bounds is used (Section 5.2.2).
func (s *Spec) EstimateSetting(setting degrade.Setting, corr *estimate.Correction, stream *stats.Stream) (estimate.Estimate, error) {
	return s.EstimateSettingCtx(context.Background(), setting, corr, stream)
}

// EstimateSettingCtx is EstimateSetting with cancellation: detector work
// the estimate triggers aborts when ctx is done.
func (s *Spec) EstimateSettingCtx(ctx context.Context, setting degrade.Setting, corr *estimate.Correction, stream *stats.Stream) (estimate.Estimate, error) {
	if err := s.Validate(); err != nil {
		return estimate.Estimate{}, err
	}
	plan, err := degrade.ApplyCtx(ctx, s.Video, s.Model, setting, stream)
	if err != nil {
		return estimate.Estimate{}, err
	}
	return s.estimatePlan(ctx, plan, corr)
}

func (s *Spec) estimatePlan(ctx context.Context, plan *degrade.Plan, corr *estimate.Correction) (estimate.Estimate, error) {
	values, err := s.sampleValuesCtx(ctx, plan)
	if err != nil {
		return estimate.Estimate{}, err
	}
	est, err := estimate.Smokescreen(s.Agg, values, plan.Total, s.Params)
	if err != nil {
		return estimate.Estimate{}, err
	}
	randomOnly := plan.Setting.IsRandomOnly(s.Model)
	if corr == nil {
		if !randomOnly {
			return estimate.Estimate{}, fmt.Errorf(
				"profile: setting %v applies non-random interventions; a correction set is required for a sound bound", plan.Setting)
		}
		return s.deltaSurcharged(est, plan), nil
	}
	est, err = corr.Repaired(s.Agg, est, s.Params, randomOnly)
	if err != nil {
		return est, err
	}
	return s.deltaSurcharged(est, plan), nil
}

// deltaSurcharged folds the bounded temporal-delta fragility surcharge
// into err_b. Bounded delta detection (detect.DeltaBounded) may splice a
// prior-frame detection whose worst-case perturbation was within
// tolerance but whose confidence margin ran thin; the fraction of frames
// that leaned on such a margin is an additional relative-error exposure
// the bound must carry. Exact mode and the off mode reproduce the full
// evaluation bit-for-bit, so they add nothing.
func (s *Spec) deltaSurcharged(est estimate.Estimate, plan *degrade.Plan) estimate.Estimate {
	if detect.DeltaDetectMode() != detect.DeltaBounded {
		return est
	}
	v := degrade.EffectiveVideo(s.Video, plan.Setting)
	sur := detect.DeltaSurcharge(v, s.Model.Name, plan.Resolution)
	if sur > 0 {
		est.ErrBound += sur
	}
	return est
}

// UncorrectedEstimate computes the estimate WITHOUT profile repair even
// for non-random settings. The bound may undershoot the true error; it
// exists for the Figure 6 comparison and for callers that knowingly accept
// unsound bounds.
func (s *Spec) UncorrectedEstimate(setting degrade.Setting, stream *stats.Stream) (estimate.Estimate, error) {
	if err := s.Validate(); err != nil {
		return estimate.Estimate{}, err
	}
	plan, err := degrade.Apply(s.Video, s.Model, setting, stream)
	if err != nil {
		return estimate.Estimate{}, err
	}
	values, err := s.sampleValuesCtx(context.Background(), plan)
	if err != nil {
		return estimate.Estimate{}, err
	}
	est, err := estimate.Smokescreen(s.Agg, values, plan.Total, s.Params)
	if err != nil {
		return est, err
	}
	return s.deltaSurcharged(est, plan), nil
}

// Point is one (degradation, error-bound) pair of a profile.
type Point struct {
	Setting  degrade.Setting
	Estimate estimate.Estimate
	Repaired bool   // bound produced by profile repair
	Tier     string // ladder tier name, when the point is a ladder rung
}

// Profile is a tradeoff curve: error bounds across one axis of the
// intervention space, for a fixed query and corpus. Missing values in
// between points are interpolated by the administrator (or BoundAtFraction).
type Profile struct {
	VideoName string
	ModelName string
	Class     scene.Class
	Agg       estimate.Agg
	Points    []Point
}

// ErrOutOfRange reports a BoundAtFraction query the profile cannot
// answer: a fraction outside (0, 1] (or NaN), or an empty profile with no
// points to interpolate between. Callers distinguish it from other errors
// with errors.Is.
var ErrOutOfRange = errors.New("profile: fraction out of range")

// BoundAtFraction linearly interpolates the error bound at sample
// fraction f along a fraction-axis profile. Within (0, 1] but outside the
// profiled range the nearest endpoint is returned (the profile's own
// endpoints clamp); a fraction no Setting could carry — f <= 0, f > 1, or
// NaN — and an empty profile return an error wrapping ErrOutOfRange.
func (p *Profile) BoundAtFraction(f float64) (float64, error) {
	if math.IsNaN(f) || f <= 0 || f > 1 {
		return 0, fmt.Errorf("%w: f=%v not in (0,1]", ErrOutOfRange, f)
	}
	if len(p.Points) == 0 {
		return 0, fmt.Errorf("%w: empty profile", ErrOutOfRange)
	}
	pts := append([]Point(nil), p.Points...)
	sort.Slice(pts, func(a, b int) bool {
		return pts[a].Setting.SampleFraction < pts[b].Setting.SampleFraction
	})
	if f <= pts[0].Setting.SampleFraction {
		return pts[0].Estimate.ErrBound, nil
	}
	last := pts[len(pts)-1]
	if f >= last.Setting.SampleFraction {
		return last.Estimate.ErrBound, nil
	}
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if f <= hi.Setting.SampleFraction {
			span := hi.Setting.SampleFraction - lo.Setting.SampleFraction
			t := (f - lo.Setting.SampleFraction) / span
			return lo.Estimate.ErrBound + t*(hi.Estimate.ErrBound-lo.Estimate.ErrBound), nil
		}
	}
	return last.Estimate.ErrBound, nil
}

// ChooseFraction returns the most degraded (smallest) sample fraction
// whose bound does not exceed maxErr, implementing the administrator's
// "choosing a tradeoff" stage along the sampling axis. ok is false when no
// profiled fraction qualifies.
func (p *Profile) ChooseFraction(maxErr float64) (degrade.Setting, bool) {
	best := degrade.Setting{}
	found := false
	for _, pt := range p.Points {
		if pt.Estimate.ErrBound > maxErr {
			continue
		}
		if !found || pt.Setting.SampleFraction < best.SampleFraction {
			best = pt.Setting
			found = true
		}
	}
	return best, found
}

// Distance returns the mean absolute error-bound difference between two
// profiles over their shared settings (matched by sample fraction and
// resolution) — the metric of the paper's Figure 10. An error is returned
// when the profiles share no settings.
func Distance(a, b *Profile) (float64, error) {
	type key struct {
		f float64
		p int
	}
	bounds := make(map[key]float64, len(a.Points))
	for _, pt := range a.Points {
		bounds[key{pt.Setting.SampleFraction, pt.Setting.Resolution}] = pt.Estimate.ErrBound
	}
	var sum float64
	var n int
	for _, pt := range b.Points {
		if bound, ok := bounds[key{pt.Setting.SampleFraction, pt.Setting.Resolution}]; ok {
			sum += math.Abs(bound - pt.Estimate.ErrBound)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("profile: profiles share no settings")
	}
	return sum / float64(n), nil
}
