package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func TestHypercubeRoundTrip(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(301)
	res, err := ConstructCorrection(s, 0.05, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := GenerateHypercube(s, []float64{0.02, 0.1}, res.Correction, root.Child(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveHypercube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHypercube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.VideoName != cube.VideoName || back.Agg != cube.Agg || back.Class != cube.Class {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.Bounds) != len(cube.Bounds) {
		t.Fatal("combo axis lost")
	}
	for ci := range cube.Bounds {
		for ri := range cube.Bounds[ci] {
			for fi := range cube.Bounds[ci][ri] {
				a, b := cube.Bounds[ci][ri][fi], back.Bounds[ci][ri][fi]
				if math.IsNaN(a) != math.IsNaN(b) {
					t.Fatalf("NaN handling broken at %d/%d/%d", ci, ri, fi)
				}
				if !math.IsNaN(a) && a != b {
					t.Fatalf("bound drifted at %d/%d/%d: %v vs %v", ci, ri, fi, a, b)
				}
			}
		}
	}
	// The loaded cube supports tradeoff selection like the original.
	want, okWant := cube.ChooseTradeoff(0.5)
	got, okGot := back.ChooseTradeoff(0.5)
	if okWant != okGot || want.String() != got.String() {
		t.Fatalf("ChooseTradeoff differs after round trip: %v vs %v", want, got)
	}
}

func TestHypercubeLoadRejectsCorruption(t *testing.T) {
	cases := []string{
		``,
		`{"version": 99}`,
		`{"version": 1, "agg": "MEDIAN", "class": "car"}`,
		`{"version": 1, "agg": "AVG", "class": "dog"}`,
		`{"version": 1, "agg": "AVG", "class": "car", "combos": [[]], "bounds": []}`,
	}
	for _, input := range cases {
		if _, err := LoadHypercube(strings.NewReader(input)); err == nil {
			t.Fatalf("corrupt hypercube accepted: %q", input)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := &Profile{
		VideoName: "small",
		ModelName: "yolov4-sim",
		Class:     scene.Car,
		Agg:       estimate.MAX,
		Points: []Point{
			{
				Setting:  degrade.Setting{SampleFraction: 0.1, Resolution: 160, Restricted: []scene.Class{scene.Face}, NoiseSigma: 0.05},
				Estimate: estimate.Estimate{Value: 7, ErrBound: 0.2, Sample: 120, N: 1200},
				Repaired: true,
			},
			{
				Setting:  degrade.Setting{SampleFraction: 0.5},
				Estimate: estimate.Estimate{Value: 8, ErrBound: 0.05, Sample: 600, N: 1200},
			},
		},
	}
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Agg != p.Agg || back.Class != p.Class || len(back.Points) != 2 {
		t.Fatalf("profile lost: %+v", back)
	}
	pt := back.Points[0]
	if pt.Setting.String() != p.Points[0].Setting.String() {
		t.Fatalf("setting drifted: %v vs %v", pt.Setting, p.Points[0].Setting)
	}
	if pt.Estimate != p.Points[0].Estimate || !pt.Repaired {
		t.Fatalf("estimate drifted: %+v", pt)
	}
	// A loaded profile drives tradeoff choices.
	setting, ok := back.ChooseFraction(0.1)
	if !ok || setting.SampleFraction != 0.5 {
		t.Fatalf("ChooseFraction on loaded profile: %v %v", setting, ok)
	}
}

func TestProfileLoadRejectsCorruption(t *testing.T) {
	for _, input := range []string{``, `{"version": 7}`, `{"version":1,"agg":"NOPE","class":"car"}`} {
		if _, err := LoadProfile(strings.NewReader(input)); err == nil {
			t.Fatalf("corrupt profile accepted: %q", input)
		}
	}
}

func TestCanonicalKeyStable(t *testing.T) {
	spec := KeySpec{
		VideoName:  "small",
		FrameCount: 1200,
		ModelName:  "yolov4",
		Query:      "SELECT AVG(count(car)) FROM small",
		Family: Family{
			Fractions: []float64{0.02, 0.05, 0.1},
			Setting: degrade.Setting{
				Resolution: 320,
				Restricted: []scene.Class{scene.Person, scene.Face},
			},
		},
		Params: estimate.Params{Delta: 0.05, R: 0.99},
		Seed:   1,
	}
	key := spec.CanonicalKey()
	if len(key) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", key)
	}
	if spec.CanonicalKey() != key {
		t.Fatal("key not deterministic across calls")
	}

	// Restricted-class order must not matter: the set, not the slice, is
	// part of the artifact's identity.
	reordered := spec
	reordered.Family.Setting.Restricted = []scene.Class{scene.Face, scene.Person}
	if reordered.CanonicalKey() != key {
		t.Fatal("key depends on restricted-class order")
	}

	// Building the spec from a map (any iteration order) must also agree.
	fields := map[string]func(*KeySpec){
		"video":  func(k *KeySpec) { k.VideoName = "small" },
		"frames": func(k *KeySpec) { k.FrameCount = 1200 },
		"model":  func(k *KeySpec) { k.ModelName = "yolov4" },
		"query":  func(k *KeySpec) { k.Query = "SELECT AVG(count(car)) FROM small" },
		"family": func(k *KeySpec) {
			k.Family = Family{
				Fractions: []float64{0.02, 0.05, 0.1},
				Setting: degrade.Setting{
					Resolution: 320,
					Restricted: []scene.Class{scene.Person, scene.Face},
				},
			}
		},
		"params": func(k *KeySpec) { k.Params = estimate.Params{Delta: 0.05, R: 0.99} },
		"seed":   func(k *KeySpec) { k.Seed = 1 },
	}
	var fromMap KeySpec
	for _, set := range fields {
		set(&fromMap)
	}
	if fromMap.CanonicalKey() != key {
		t.Fatal("key depends on construction order")
	}
}

func TestCanonicalKeySensitivity(t *testing.T) {
	base := KeySpec{
		VideoName:  "small",
		FrameCount: 1200,
		ModelName:  "yolov4",
		Query:      "SELECT AVG(count(car)) FROM small",
		Family: Family{
			Fractions: []float64{0.02, 0.05},
			Setting: degrade.Setting{
				Resolution: 320,
				Restricted: []scene.Class{scene.Person},
			},
		},
		Params: estimate.Params{Delta: 0.05, R: 0.99},
		Seed:   1,
	}
	key := base.CanonicalKey()
	mutations := map[string]func(*KeySpec){
		"video":      func(k *KeySpec) { k.VideoName = "highway" },
		"frames":     func(k *KeySpec) { k.FrameCount = 1201 },
		"model":      func(k *KeySpec) { k.ModelName = "mask-rcnn" },
		"query":      func(k *KeySpec) { k.Query = "SELECT SUM(count(car)) FROM small" },
		"fractions":  func(k *KeySpec) { k.Family.Fractions = []float64{0.02, 0.06} },
		"resolution": func(k *KeySpec) { k.Family.Setting.Resolution = 160 },
		"restricted": func(k *KeySpec) { k.Family.Setting.Restricted = []scene.Class{scene.Face} },
		"noise":      func(k *KeySpec) { k.Family.Setting.NoiseSigma = 0.1 },
		"blur":       func(k *KeySpec) { k.Family.Setting.MotionBlur = 7 },
		"quantize":   func(k *KeySpec) { k.Family.Setting.Quantize = 32 },
		"occlusion":  func(k *KeySpec) { k.Family.Setting.Occlusion = 0.2 },
		"ladder":     func(k *KeySpec) { k.Ladder = "default" },
		"earlystop":  func(k *KeySpec) { k.Family.EarlyStopDelta = 0.01 },
		"delta":      func(k *KeySpec) { k.Params.Delta = 0.1 },
		"r":          func(k *KeySpec) { k.Params.R = 0.95 },
		"seed":       func(k *KeySpec) { k.Seed = 2 },
	}
	for name, mutate := range mutations {
		changed := base
		// Deep-copy the slices the mutation may share with base.
		changed.Family.Fractions = append([]float64(nil), base.Family.Fractions...)
		changed.Family.Setting.Restricted = append([]scene.Class(nil), base.Family.Setting.Restricted...)
		mutate(&changed)
		if changed.CanonicalKey() == key {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
	// Labelled length-prefixed fields: moving a value between adjacent
	// fields must not collide.
	a := base
	a.VideoName, a.ModelName = "ab", "c"
	b := base
	b.VideoName, b.ModelName = "a", "bc"
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("field boundaries collide")
	}
}
