package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func TestHypercubeRoundTrip(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(301)
	res, err := ConstructCorrection(s, 0.05, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := GenerateHypercube(s, []float64{0.02, 0.1}, res.Correction, root.Child(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveHypercube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHypercube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.VideoName != cube.VideoName || back.Agg != cube.Agg || back.Class != cube.Class {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.Bounds) != len(cube.Bounds) {
		t.Fatal("combo axis lost")
	}
	for ci := range cube.Bounds {
		for ri := range cube.Bounds[ci] {
			for fi := range cube.Bounds[ci][ri] {
				a, b := cube.Bounds[ci][ri][fi], back.Bounds[ci][ri][fi]
				if math.IsNaN(a) != math.IsNaN(b) {
					t.Fatalf("NaN handling broken at %d/%d/%d", ci, ri, fi)
				}
				if !math.IsNaN(a) && a != b {
					t.Fatalf("bound drifted at %d/%d/%d: %v vs %v", ci, ri, fi, a, b)
				}
			}
		}
	}
	// The loaded cube supports tradeoff selection like the original.
	want, okWant := cube.ChooseTradeoff(0.5)
	got, okGot := back.ChooseTradeoff(0.5)
	if okWant != okGot || want.String() != got.String() {
		t.Fatalf("ChooseTradeoff differs after round trip: %v vs %v", want, got)
	}
}

func TestHypercubeLoadRejectsCorruption(t *testing.T) {
	cases := []string{
		``,
		`{"version": 99}`,
		`{"version": 1, "agg": "MEDIAN", "class": "car"}`,
		`{"version": 1, "agg": "AVG", "class": "dog"}`,
		`{"version": 1, "agg": "AVG", "class": "car", "combos": [[]], "bounds": []}`,
	}
	for _, input := range cases {
		if _, err := LoadHypercube(strings.NewReader(input)); err == nil {
			t.Fatalf("corrupt hypercube accepted: %q", input)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := &Profile{
		VideoName: "small",
		ModelName: "yolov4-sim",
		Class:     scene.Car,
		Agg:       estimate.MAX,
		Points: []Point{
			{
				Setting:  degrade.Setting{SampleFraction: 0.1, Resolution: 160, Restricted: []scene.Class{scene.Face}, NoiseSigma: 0.05},
				Estimate: estimate.Estimate{Value: 7, ErrBound: 0.2, Sample: 120, N: 1200},
				Repaired: true,
			},
			{
				Setting:  degrade.Setting{SampleFraction: 0.5},
				Estimate: estimate.Estimate{Value: 8, ErrBound: 0.05, Sample: 600, N: 1200},
			},
		},
	}
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Agg != p.Agg || back.Class != p.Class || len(back.Points) != 2 {
		t.Fatalf("profile lost: %+v", back)
	}
	pt := back.Points[0]
	if pt.Setting.String() != p.Points[0].Setting.String() {
		t.Fatalf("setting drifted: %v vs %v", pt.Setting, p.Points[0].Setting)
	}
	if pt.Estimate != p.Points[0].Estimate || !pt.Repaired {
		t.Fatalf("estimate drifted: %+v", pt)
	}
	// A loaded profile drives tradeoff choices.
	setting, ok := back.ChooseFraction(0.1)
	if !ok || setting.SampleFraction != 0.5 {
		t.Fatalf("ChooseFraction on loaded profile: %v %v", setting, ok)
	}
}

func TestProfileLoadRejectsCorruption(t *testing.T) {
	for _, input := range []string{``, `{"version": 7}`, `{"version":1,"agg":"NOPE","class":"car"}`} {
		if _, err := LoadProfile(strings.NewReader(input)); err == nil {
			t.Fatalf("corrupt profile accepted: %q", input)
		}
	}
}
