package profile

import (
	"testing"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
)

// TestCanonicalKeyGolden pins the canonical keys of two representative
// legacy (noise-only) profile families to the exact digests the pre-axis-
// registry encoder produced. The axis registry's key emission must keep
// these byte-for-byte: stored fleet artifacts are content-addressed by
// them, and a silent change would orphan every archived profile. Never
// update these constants to make the test pass — fix the encoder.
func TestCanonicalKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		spec KeySpec
		want string
	}{
		{
			name: "defaults",
			spec: KeySpec{
				VideoName:  "night-street",
				FrameCount: 10800,
				ModelName:  "mask-rcnn",
				Query:      "SELECT AVG(count(car)) FROM night-street USING mask-rcnn SAMPLE 0.01",
				Family: Family{
					Fractions: []float64{0.01, 0.02, 0.05},
				},
				Params: estimate.Params{Delta: 0.05, R: 0.99},
				Seed:   1,
			},
			want: "531d9ddb6d4901e64cf16bbc2abc88c403e7c91a6c5f5cfebf47d051e69144d3",
		},
		{
			name: "all-legacy-axes",
			spec: KeySpec{
				VideoName:  "night-street",
				FrameCount: 10800,
				ModelName:  "mask-rcnn",
				Query:      "SELECT MAX(count(car)) FROM ua-detrac USING yolov4 RESOLUTION 320 REMOVE person,face NOISE 0.1",
				Family: Family{
					Fractions: []float64{0.01, 0.02, 0.05},
					Setting: degrade.Setting{
						Resolution: 320,
						Restricted: []scene.Class{scene.Person, scene.Face},
						NoiseSigma: 0.1,
					},
					EarlyStopDelta: 0.005,
				},
				Params: estimate.Params{Delta: 0.05, R: 0.99},
				Seed:   1,
			},
			want: "b8c7d9d405541738df21ac978363281c24f4b74e5a8ec322e99ecd58cf365da4",
		},
	}
	for _, tc := range cases {
		if got := tc.spec.CanonicalKey(); got != tc.want {
			t.Errorf("%s: canonical key drifted:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

// TestCanonicalKeyNewAxesExtend checks the other half of the
// compatibility contract: activating a new axis (blur, quantization,
// occlusion) or naming a ladder extends the hash input, so the key
// changes — distinct artifacts never share an address.
func TestCanonicalKeyNewAxesExtend(t *testing.T) {
	base := KeySpec{
		VideoName:  "small",
		FrameCount: 1200,
		ModelName:  "yolov4",
		Query:      "SELECT AVG(count(car)) FROM small",
		Family:     Family{Fractions: []float64{0.02, 0.05}},
		Params:     estimate.Params{Delta: 0.05, R: 0.99},
		Seed:       1,
	}
	key := base.CanonicalKey()
	seen := map[string]string{"base": key}
	variants := map[string]func(*KeySpec){
		"blur":      func(k *KeySpec) { k.Family.Setting.MotionBlur = 7 },
		"quantize":  func(k *KeySpec) { k.Family.Setting.Quantize = 32 },
		"occlusion": func(k *KeySpec) { k.Family.Setting.Occlusion = 0.2 },
		"ladder":    func(k *KeySpec) { k.Ladder = "default" },
	}
	for name, mutate := range variants {
		changed := base
		mutate(&changed)
		got := changed.CanonicalKey()
		for other, prev := range seen {
			if got == prev {
				t.Errorf("activating %s collides with %s key", name, other)
			}
		}
		seen[name] = got
	}
	// Inactive new axes must hash to the legacy bytes: the zero values of
	// blur/quantize/occlusion emit nothing.
	inert := base
	inert.Family.Setting.MotionBlur = 1 // identity blur renders nothing
	if inert.CanonicalKey() != key {
		t.Error("identity blur changed the key; legacy settings must hash unchanged")
	}
}
