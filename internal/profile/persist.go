package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/scene"
)

// Profile and hypercube persistence. Profile generation is the expensive
// stage (it drives the detectors); administrators archive its output and
// revisit the tradeoff choice later, or ship a profile generated on a
// similar video to the owner of a sensitive one (Section 3.3.1's
// fallback). JSON keeps the artifacts diffable and toolable.
//
// NaN bounds (infeasible hypercube cells) are encoded as null.

// persistedHypercube is the JSON schema for a Hypercube.
type persistedHypercube struct {
	Version     int            `json:"version"`
	VideoName   string         `json:"video"`
	ModelName   string         `json:"model"`
	Class       string         `json:"class"`
	Agg         string         `json:"agg"`
	Fractions   []float64      `json:"fractions"`
	Resolutions []int          `json:"resolutions"`
	Combos      [][]string     `json:"combos"`
	Bounds      [][][]*float64 `json:"bounds"`
}

const persistVersion = 1

// KeySpec names everything a cached profile artifact depends on: the
// corpus fingerprint (name plus frame count, enough to distinguish the
// deterministic synthetic corpora), the query in canonical syntax, the
// intervention family swept, the estimator parameters, and the randomness
// seed. Two generations with equal KeySpecs produce byte-identical
// artifacts, so the spec's hash content-addresses the profile store.
type KeySpec struct {
	// VideoName and FrameCount fingerprint the corpus.
	VideoName  string
	FrameCount int
	// ModelName is the detector the query resolved to.
	ModelName string
	// Query is the canonical query string (query.Query.String()).
	Query string
	// Family describes the intervention axis the profile sweeps.
	Family Family
	// Ladder names the fidelity ladder when the artifact is a ladder
	// profile ("" for a fraction sweep; the empty name does not hash, so
	// legacy sweep keys are unchanged).
	Ladder string
	// Params are the estimator knobs (risk delta, extreme quantile r).
	Params estimate.Params
	// Seed is the root randomness seed.
	Seed uint64
}

// Family is the intervention family of a profile: the swept fractions and
// the fixed non-sampling axes.
type Family struct {
	Fractions []float64
	// Setting fixes the non-sampling axes (resolution, removal, noise,
	// blur, quantization, occlusion); its SampleFraction is ignored. The
	// degrade axis registry renders its canonical key fields, emitting the
	// newer axes only when active so legacy noise-only families keep their
	// stored keys.
	Setting        degrade.Setting
	EarlyStopDelta float64
}

// CanonicalKey returns a stable hex digest of the spec. The encoding is
// order-canonical: fields are written in a fixed labelled sequence and
// Restricted classes are sorted by name before hashing, so the key does
// not depend on struct-literal, map-iteration, or clause order at the
// call site. The digest is safe to use as a file name.
func (k KeySpec) CanonicalKey() string {
	h := sha256.New()
	field := func(label, value string) {
		// Length-prefix label and value so no concatenation of fields can
		// collide with a different field split.
		fmt.Fprintf(h, "%d:%s=%d:%s;", len(label), label, len(value), value)
	}
	field("video", k.VideoName)
	field("frames", strconv.Itoa(k.FrameCount))
	field("model", k.ModelName)
	field("query", k.Query)
	fracs := make([]string, len(k.Family.Fractions))
	for i, f := range k.Family.Fractions {
		fracs[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	for _, f := range fracs {
		field("fraction", f)
	}
	// The non-sampling axes emit through the degrade axis registry in its
	// canonical order: the legacy axes (resolution, sorted restricted,
	// noise) always — reproducing stored PR 8 keys byte-for-byte — and the
	// newer axes only when active.
	for _, kf := range k.Family.Setting.KeyFields() {
		field(kf.Label, kf.Value)
	}
	if k.Ladder != "" {
		field("ladder", k.Ladder)
	}
	field("earlystop", strconv.FormatFloat(k.Family.EarlyStopDelta, 'g', -1, 64))
	field("delta", strconv.FormatFloat(k.Params.Delta, 'g', -1, 64))
	field("r", strconv.FormatFloat(k.Params.R, 'g', -1, 64))
	field("seed", strconv.FormatUint(k.Seed, 10))
	return hex.EncodeToString(h.Sum(nil))
}

// SaveHypercube writes the hypercube as indented JSON.
func SaveHypercube(w io.Writer, h *Hypercube) error {
	out := persistedHypercube{
		Version:     persistVersion,
		VideoName:   h.VideoName,
		ModelName:   h.ModelName,
		Class:       h.Class.String(),
		Agg:         h.Agg.String(),
		Fractions:   h.Fractions,
		Resolutions: h.Resolutions,
	}
	for _, combo := range h.Combos {
		names := make([]string, len(combo))
		for i, c := range combo {
			names[i] = c.String()
		}
		out.Combos = append(out.Combos, names)
	}
	for _, plane := range h.Bounds {
		var outPlane [][]*float64
		for _, row := range plane {
			outRow := make([]*float64, len(row))
			for i, v := range row {
				if !math.IsNaN(v) {
					value := v
					outRow[i] = &value
				}
			}
			outPlane = append(outPlane, outRow)
		}
		out.Bounds = append(out.Bounds, outPlane)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadHypercube reads a hypercube previously written by SaveHypercube,
// validating shape consistency.
func LoadHypercube(r io.Reader) (*Hypercube, error) {
	var in persistedHypercube
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decoding hypercube: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("profile: unsupported hypercube version %d", in.Version)
	}
	agg, err := estimate.ParseAgg(in.Agg)
	if err != nil {
		return nil, err
	}
	class, err := scene.ParseClass(in.Class)
	if err != nil {
		return nil, err
	}
	h := &Hypercube{
		VideoName:   in.VideoName,
		ModelName:   in.ModelName,
		Class:       class,
		Agg:         agg,
		Fractions:   in.Fractions,
		Resolutions: in.Resolutions,
	}
	for _, names := range in.Combos {
		var combo []scene.Class
		for _, name := range names {
			c, err := scene.ParseClass(name)
			if err != nil {
				return nil, err
			}
			combo = append(combo, c)
		}
		h.Combos = append(h.Combos, combo)
	}
	if len(in.Bounds) != len(h.Combos) {
		return nil, fmt.Errorf("profile: bounds/combos shape mismatch (%d vs %d)", len(in.Bounds), len(h.Combos))
	}
	for ci, plane := range in.Bounds {
		if len(plane) != len(h.Resolutions) {
			return nil, fmt.Errorf("profile: combo %d has %d resolution rows, want %d", ci, len(plane), len(h.Resolutions))
		}
		var outPlane [][]float64
		for ri, row := range plane {
			if len(row) != len(h.Fractions) {
				return nil, fmt.Errorf("profile: combo %d resolution %d has %d cells, want %d", ci, ri, len(row), len(h.Fractions))
			}
			outRow := make([]float64, len(row))
			for i, v := range row {
				if v == nil {
					outRow[i] = math.NaN()
				} else {
					outRow[i] = *v
				}
			}
			outPlane = append(outPlane, outRow)
		}
		h.Bounds = append(h.Bounds, outPlane)
	}
	return h, nil
}

// persistedProfile is the JSON schema for a single-axis Profile.
type persistedProfile struct {
	Version   int              `json:"version"`
	VideoName string           `json:"video"`
	ModelName string           `json:"model"`
	Class     string           `json:"class"`
	Agg       string           `json:"agg"`
	Points    []persistedPoint `json:"points"`
}

type persistedPoint struct {
	Fraction   float64  `json:"fraction"`
	Resolution int      `json:"resolution,omitempty"`
	Restricted []string `json:"restricted,omitempty"`
	Noise      float64  `json:"noise,omitempty"`
	Blur       int      `json:"blur,omitempty"`
	Quantize   int      `json:"quantize,omitempty"`
	Occlusion  float64  `json:"occlusion,omitempty"`
	Value      float64  `json:"value"`
	ErrBound   float64  `json:"err_bound"`
	Sample     int      `json:"sample"`
	N          int      `json:"n"`
	Repaired   bool     `json:"repaired,omitempty"`
	Tier       string   `json:"tier,omitempty"`
}

// SaveProfile writes a profile as indented JSON.
//
//smokevet:ignore axisreg: persistedPoint is the versioned JSON wire format — its named fields ARE the format, not an axis dispatch
func SaveProfile(w io.Writer, p *Profile) error {
	out := persistedProfile{
		Version:   persistVersion,
		VideoName: p.VideoName,
		ModelName: p.ModelName,
		Class:     p.Class.String(),
		Agg:       p.Agg.String(),
	}
	for _, pt := range p.Points {
		pp := persistedPoint{
			Fraction:   pt.Setting.SampleFraction,
			Resolution: pt.Setting.Resolution,
			Noise:      pt.Setting.NoiseSigma,
			Blur:       pt.Setting.MotionBlur,
			Quantize:   pt.Setting.Quantize,
			Occlusion:  pt.Setting.Occlusion,
			Value:      pt.Estimate.Value,
			ErrBound:   pt.Estimate.ErrBound,
			Sample:     pt.Estimate.Sample,
			N:          pt.Estimate.N,
			Repaired:   pt.Repaired,
			Tier:       pt.Tier,
		}
		for _, c := range pt.Setting.Restricted {
			pp.Restricted = append(pp.Restricted, c.String())
		}
		out.Points = append(out.Points, pp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadProfile reads a profile previously written by SaveProfile.
func LoadProfile(r io.Reader) (*Profile, error) {
	var in persistedProfile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decoding profile: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("profile: unsupported profile version %d", in.Version)
	}
	agg, err := estimate.ParseAgg(in.Agg)
	if err != nil {
		return nil, err
	}
	class, err := scene.ParseClass(in.Class)
	if err != nil {
		return nil, err
	}
	p := &Profile{VideoName: in.VideoName, ModelName: in.ModelName, Class: class, Agg: agg}
	for _, pp := range in.Points {
		setting := degrade.Setting{
			SampleFraction: pp.Fraction,
			Resolution:     pp.Resolution,
			NoiseSigma:     pp.Noise,
			MotionBlur:     pp.Blur,
			Quantize:       pp.Quantize,
			Occlusion:      pp.Occlusion,
		}
		for _, name := range pp.Restricted {
			c, err := scene.ParseClass(name)
			if err != nil {
				return nil, err
			}
			setting.Restricted = append(setting.Restricted, c)
		}
		p.Points = append(p.Points, Point{
			Setting: setting,
			Estimate: estimate.Estimate{
				Value:    pp.Value,
				ErrBound: pp.ErrBound,
				Sample:   pp.Sample,
				N:        pp.N,
			},
			Repaired: pp.Repaired,
			Tier:     pp.Tier,
		})
	}
	return p, nil
}
