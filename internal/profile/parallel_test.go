package profile

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/raster"
	"smokescreen/internal/stats"
)

// These tests pin the PR's central correctness claim: the parallel
// profile-generation paths are bit-for-bit identical to the sequential
// reference for a fixed seed, regardless of worker count or the order in
// which workers happen to finish. Running each parallel configuration
// several times (with extra Ps forced, so goroutines genuinely interleave
// even on a single-CPU host) exercises different completion orders.

func hypercubeBytes(t *testing.T, cube *Hypercube) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveHypercube(&buf, cube); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelHypercubeBitIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	s := testSpec(estimate.AVG)
	root := stats.NewStream(157)
	res, err := ConstructCorrection(s, 1, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	opts := HypercubeOptions{
		Fractions:  []float64{0.02, 0.1},
		Correction: res.Correction,
	}

	opts.Parallelism = 1
	seq, err := GenerateHypercubeOpts(s, opts, root.Child(2))
	if err != nil {
		t.Fatal(err)
	}
	want := hypercubeBytes(t, seq)

	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			opts.Parallelism = workers
			cube, err := GenerateHypercubeOpts(s, opts, root.Child(2))
			if err != nil {
				t.Fatal(err)
			}
			if got := hypercubeBytes(t, cube); !bytes.Equal(got, want) {
				t.Fatalf("workers=%d rep=%d: parallel hypercube differs from sequential:\n%s\nvs\n%s",
					workers, rep, got, want)
			}
		}
	}
}

func TestParallelSweepBitIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	s := testSpec(estimate.AVG)
	root := stats.NewStream(91)
	opts := SweepOptions{
		Fractions:   []float64{0.02, 0.05, 0.1, 0.2},
		Parallelism: 1,
	}
	seq, err := SweepFractions(s, opts, root.Child(7))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			opts.Parallelism = workers
			par, err := SweepFractions(s, opts, root.Child(7))
			if err != nil {
				t.Fatal(err)
			}
			// DeepEqual over the full Estimate structs is stricter than the
			// persisted form: every float must match exactly.
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("workers=%d rep=%d: parallel sweep differs:\n%+v\nvs\n%+v", workers, rep, par, seq)
			}
		}
	}
}

func TestParallelCorrectionCurveBitIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	s := testSpec(estimate.AVG)
	root := stats.NewStream(23)
	fractions := []float64{0.01, 0.03, 0.08}
	seq, err := CorrectionCurveOpts(s, fractions, 1, root.Child(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := CorrectionCurveOpts(s, fractions, workers, root.Child(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel correction curve differs:\n%+v\nvs\n%+v", workers, par, seq)
		}
	}
}

// Early-stopping sweeps are inherently sequential; a Parallelism request
// must not change their output (the fan-out is bypassed).
func TestParallelSweepRespectsEarlyStop(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(44)
	opts := SweepOptions{
		Fractions:      []float64{0.02, 0.05, 0.1, 0.2, 0.4},
		EarlyStopDelta: 0.05,
		Parallelism:    1,
	}
	seq, err := SweepFractions(s, opts, root.Child(5))
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := SweepFractions(s, opts, root.Child(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("early-stopping sweep changed under Parallelism=8:\n%+v\nvs\n%+v", par, seq)
	}
}

// TestSweepBitIdenticalAcrossKernelParallelism pins the cross-layer
// contract: the raster kernels' row fan-out (raster.SetParallelism) must
// not perturb a single bit of a generated profile, because kernel row
// blocks are fixed-size and every output row is a pure function of its
// inputs. Combined with the worker-count tests above, this makes profile
// output independent of the entire parallelism configuration.
func TestSweepBitIdenticalAcrossKernelParallelism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	prev := raster.Parallelism()
	t.Cleanup(func() { raster.SetParallelism(prev) })

	s := testSpec(estimate.AVG)
	root := stats.NewStream(63)
	opts := SweepOptions{
		Fractions:   []float64{0.02, 0.1},
		Parallelism: 2,
	}

	raster.SetParallelism(1)
	detect.ResetCaches()
	seq, err := SweepFractions(s, opts, root.Child(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, kernelWorkers := range []int{4, 8} {
		raster.SetParallelism(kernelWorkers)
		detect.ResetCaches() // force re-detection through the parallel kernels
		par, err := SweepFractions(s, opts, root.Child(9))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("kernel parallelism %d changed the profile:\n%+v\nvs\n%+v", kernelWorkers, par, seq)
		}
	}
}
