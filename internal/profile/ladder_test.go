package profile

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/plan"
	"smokescreen/internal/stats"
)

func ladderCorrection(t *testing.T, spec *Spec) *estimate.Correction {
	t.Helper()
	res, err := ConstructCorrection(spec, 0.2, stats.NewStream(9).Child(1))
	if err != nil {
		t.Fatal(err)
	}
	return res.Correction
}

// TestGenerateLadderProfile: the default ladder yields one point per
// feasible tier in rung order, each non-random tier repaired, with finite
// bounds.
func TestGenerateLadderProfile(t *testing.T) {
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)
	spec := testSpec(estimate.AVG)
	l := plan.DefaultLadder(spec.Model)
	prof, err := GenerateLadder(spec, l, LadderOptions{Correction: ladderCorrection(t, spec)}, stats.NewStream(9).Child(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Points) == 0 || len(prof.Points) > len(l.Tiers) {
		t.Fatalf("%d points for a %d-tier ladder", len(prof.Points), len(l.Tiers))
	}
	byTier := map[string]Point{}
	for _, pt := range prof.Points {
		if pt.Tier == "" {
			t.Fatal("ladder point missing tier name")
		}
		byTier[pt.Tier] = pt
		if pt.Estimate.ErrBound <= 0 || pt.Estimate.ErrBound != pt.Estimate.ErrBound {
			t.Fatalf("tier %s bound %v not finite positive", pt.Tier, pt.Estimate.ErrBound)
		}
	}
	full, ok := byTier["full"]
	if !ok {
		t.Fatal("full tier missing from profile")
	}
	if full.Repaired {
		t.Error("random-only full tier marked repaired")
	}
	for _, name := range []string{"degraded", "privacy"} {
		if pt, ok := byTier[name]; ok && !pt.Repaired {
			t.Errorf("non-random tier %s not repaired", name)
		}
	}
}

// TestGenerateLadderRequiresCorrection: non-random tiers without a
// correction set are an error, not silently unsound bounds.
func TestGenerateLadderRequiresCorrection(t *testing.T) {
	spec := testSpec(estimate.AVG)
	_, err := GenerateLadder(spec, plan.DefaultLadder(spec.Model), LadderOptions{}, stats.NewStream(9).Child(3))
	if err == nil || !strings.Contains(err.Error(), "correction") {
		t.Fatalf("err = %v, want correction-required error", err)
	}
}

// TestGenerateLadderDeterministicAcrossParallelism pins the satellite
// contract: ladder profile generation is bit-identical to sequential at
// any executor parallelism, down to the serialized bytes.
func TestGenerateLadderDeterministicAcrossParallelism(t *testing.T) {
	spec := testSpec(estimate.AVG)
	corr := ladderCorrection(t, spec)
	l := plan.DefaultLadder(spec.Model)

	generate := func(parallelism int) []byte {
		detect.ResetCaches()
		prof, err := GenerateLadderCtx(context.Background(), spec, l,
			LadderOptions{Correction: corr, Parallelism: parallelism}, stats.NewStream(9).Child(3))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveProfile(&buf, prof); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Cleanup(detect.ResetCaches)

	base := generate(1)
	for _, parallelism := range []int{0, 2, 4} {
		if got := generate(parallelism); !bytes.Equal(base, got) {
			t.Fatalf("ladder profile at parallelism %d differs from sequential:\nseq: %s\ngot: %s",
				parallelism, base, got)
		}
	}
}
