package profile

import (
	"context"
	"fmt"

	"smokescreen/internal/estimate"
	"smokescreen/internal/outputs"
	"smokescreen/internal/parallel"
	"smokescreen/internal/plan"
	"smokescreen/internal/stats"
)

// This file implements correction-set construction (paper Section 3.3.1).
// The correction set must be degraded as much as possible — for frame
// sampling that means as few frames as possible — while still giving a
// tight err_b(v). The paper's heuristic: grow the set by 1% of the corpus
// at a time, stop at the elbow where the bound stops improving by at least
// 2%, or at the administrator's size limit.

// CorrectionStep records one growth step of the construction, feeding the
// Figure 9 curves.
type CorrectionStep struct {
	Fraction float64 // correction set size / corpus size
	Size     int     // m
	ErrBound float64 // err_b(v) at this size
}

// ConstructionResult bundles the chosen correction set with the growth
// trace that led to it.
type ConstructionResult struct {
	Correction *estimate.Correction
	Steps      []CorrectionStep
	// Fraction is the chosen correction-set fraction m/N.
	Fraction float64
}

const (
	// growthStep is the per-iteration size increase: 1% of the corpus.
	growthStep = 0.01
	// elbowDelta stops growth once the bound improves by less than 2%.
	elbowDelta = 0.02
)

// ConstructCorrection builds a correction set for the spec by the paper's
// elbow heuristic. sizeLimit caps the correction fraction (the
// administrator's limit); pass 1 for no practical cap. The correction
// frames are sampled without replacement at the model's native resolution
// with no image removal — random interventions only. Growth reuses the
// already-sampled frames: each step extends the previous sample, so model
// outputs are computed once per frame.
//
// Construction is deliberately sequential and lazy: the elbow rule decides
// whether to grow the set from the previous step's bound, so each step is
// gated on its predecessor and there is no independent work to fan out.
// (The unstopped sweep, CorrectionCurve, does parallelise.)
func ConstructCorrection(spec *Spec, sizeLimit float64, stream *stats.Stream) (*ConstructionResult, error) {
	return ConstructCorrectionCtx(context.Background(), spec, sizeLimit, stream)
}

// ConstructCorrectionCtx is ConstructCorrection with cancellation: each
// growth step checks ctx before triggering detector work, so cancelling a
// daemon job aborts construction mid-elbow.
func ConstructCorrectionCtx(ctx context.Context, spec *Spec, sizeLimit float64, stream *stats.Stream) (*ConstructionResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if sizeLimit <= 0 || sizeLimit > 1 {
		return nil, fmt.Errorf("profile: correction size limit %v out of (0,1]", sizeLimit)
	}
	n := spec.Video.NumFrames()
	perm := stream.Perm(n)

	var (
		result ConstructionResult
		prev   = -1.0
	)
	for step := 1; ; step++ {
		fraction := growthStep * float64(step)
		if fraction > sizeLimit {
			break
		}
		m := int(float64(n)*fraction + 0.5)
		if m < 1 {
			m = 1
		}
		if m > n {
			m = n
		}
		stopEstimate := plan.EstimateTimer()
		sample, err := spec.outputsAtCtx(ctx, perm[:m])
		stopEstimate()
		if err != nil {
			return nil, err
		}
		corr, err := estimate.NewCorrection(spec.Agg, sample, n, spec.Params)
		if err != nil {
			return nil, err
		}
		bound := corr.Estimate.ErrBound
		result.Steps = append(result.Steps, CorrectionStep{Fraction: fraction, Size: m, ErrBound: bound})
		result.Correction = corr
		result.Fraction = fraction
		if prev >= 0 && prev-bound < elbowDelta {
			break
		}
		prev = bound
		if m == n {
			break
		}
	}
	if result.Correction == nil {
		return nil, fmt.Errorf("profile: size limit %v below the minimum growth step %v", sizeLimit, growthStep)
	}
	return &result, nil
}

// CorrectionCurve evaluates err_b(v) across explicit correction-set
// fractions without the stopping rule — the full Figure 9 sweep. The same
// nested sampling is used so the curve is monotone in information.
func CorrectionCurve(spec *Spec, fractions []float64, stream *stats.Stream) ([]CorrectionStep, error) {
	return CorrectionCurveOpts(spec, fractions, 1, stream)
}

// CorrectionCurveOpts is CorrectionCurve with the fraction evaluations
// fanned out across parallelism workers (1 is sequential, 0 or negative
// means one worker per CPU). The permutation is drawn once up front, so
// every fraction's nested sample — and therefore the curve — is identical
// at any worker count.
func CorrectionCurveOpts(spec *Spec, fractions []float64, parallelism int, stream *stats.Stream) ([]CorrectionStep, error) {
	return CorrectionCurveCtx(context.Background(), spec, fractions, parallelism, stream)
}

// CorrectionCurveCtx runs the curve as a pipelined plan: nested sampling
// makes the largest fraction's frame set the curve's one deduplicated work
// unit, which the detect stage materialises in the column store before the
// fraction evaluations fan out reading columns.
func CorrectionCurveCtx(ctx context.Context, spec *Spec, fractions []float64, parallelism int, stream *stats.Stream) ([]CorrectionStep, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Video.NumFrames()
	perm := stream.Perm(n)

	maxM := 0
	for _, fraction := range fractions {
		if fraction <= 0 || fraction > 1 {
			continue // the per-fraction task reports the error
		}
		m := int(float64(n)*fraction + 0.5)
		if m < 1 {
			m = 1
		}
		if m > maxM {
			maxM = m
		}
	}
	if maxM > 0 {
		stopDetect := plan.DetectTimer()
		err := outputs.Ensure(ctx, spec.Video, spec.Model, spec.Class, spec.Model.NativeInput, perm[:maxM])
		stopDetect()
		if err != nil {
			return nil, err
		}
	}

	stopEstimate := plan.EstimateTimer()
	steps, err := parallel.MapCtx(ctx, len(fractions), parallelism, func(i int) (CorrectionStep, error) {
		fraction := fractions[i]
		if fraction <= 0 || fraction > 1 {
			return CorrectionStep{}, fmt.Errorf("profile: correction fraction %v out of (0,1]", fraction)
		}
		m := int(float64(n)*fraction + 0.5)
		if m < 1 {
			m = 1
		}
		sample, err := spec.outputsAtCtx(ctx, perm[:m])
		if err != nil {
			return CorrectionStep{}, err
		}
		corr, err := estimate.NewCorrection(spec.Agg, sample, n, spec.Params)
		if err != nil {
			return CorrectionStep{}, err
		}
		return CorrectionStep{Fraction: fraction, Size: m, ErrBound: corr.Estimate.ErrBound}, nil
	})
	stopEstimate()
	return steps, err
}

// BuildCorrectionAt builds a correction set of an explicit size (used by
// the profile-similarity experiment, which fixes 500 frames).
func BuildCorrectionAt(spec *Spec, m int, stream *stats.Stream) (*estimate.Correction, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Video.NumFrames()
	if m < 1 || m > n {
		return nil, fmt.Errorf("profile: correction size %d out of [1,%d]", m, n)
	}
	idx := stream.SampleWithoutReplacement(n, m)
	sample, err := spec.outputsAtCtx(context.Background(), idx)
	if err != nil {
		return nil, err
	}
	return estimate.NewCorrection(spec.Agg, sample, n, spec.Params)
}
