package profile

import (
	"context"
	"errors"
	"math"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/outputs"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func testSpec(agg estimate.Agg) *Spec {
	return &Spec{
		Video:  dataset.MustLoad("small"),
		Model:  detect.YOLOv4Sim(),
		Class:  scene.Car,
		Agg:    agg,
		Params: estimate.DefaultParams(),
	}
}

func TestSpecValidate(t *testing.T) {
	s := testSpec(estimate.AVG)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Spec{Video: s.Video, Model: detect.MTCNNSim(), Class: scene.Car, Agg: estimate.AVG, Params: s.Params}
	if err := bad.Validate(); err == nil {
		t.Fatal("MTCNN car spec accepted")
	}
	if err := (&Spec{}).Validate(); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestTruePopulationTransform(t *testing.T) {
	avg := testSpec(estimate.AVG)
	count := testSpec(estimate.COUNT)
	popAvg := avg.TruePopulation()
	popCount := count.TruePopulation()
	if len(popAvg) != avg.Video.NumFrames() || len(popCount) != len(popAvg) {
		t.Fatal("population lengths wrong")
	}
	for i := range popCount {
		if popCount[i] != 0 && popCount[i] != 1 {
			t.Fatalf("COUNT population not indicators: %v", popCount[i])
		}
		if (popCount[i] == 1) != (popAvg[i] > 0) {
			t.Fatalf("indicator %v inconsistent with count %v", popCount[i], popAvg[i])
		}
	}
}

func TestSpecCustomPredicate(t *testing.T) {
	s := testSpec(estimate.COUNT)
	s.Predicate = func(x float64) float64 {
		if x >= 3 {
			return 1
		}
		return 0
	}
	pop := s.TruePopulation()
	raw, err := outputs.Full(context.Background(), s.Video, s.Model, s.Class, s.Model.NativeInput)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pop {
		want := 0.0
		if raw[i] >= 3 {
			want = 1
		}
		if pop[i] != want {
			t.Fatalf("predicate not applied at %d", i)
		}
	}
}

func TestEstimateSettingRandomCoversTruth(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(101)
	covered := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		est, err := s.EstimateSetting(degrade.Setting{SampleFraction: 0.2}, nil, root.Child(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		trueErr, err := s.TrueErrorOf(est.Value)
		if err != nil {
			t.Fatal(err)
		}
		if trueErr <= est.ErrBound {
			covered++
		}
	}
	if covered < trials*9/10 {
		t.Fatalf("random-intervention coverage %d/%d", covered, trials)
	}
}

func TestEstimateSettingNonRandomNeedsCorrection(t *testing.T) {
	s := testSpec(estimate.AVG)
	_, err := s.EstimateSetting(degrade.Setting{SampleFraction: 0.2, Resolution: 160}, nil, stats.NewStream(1))
	if err == nil {
		t.Fatal("non-random setting without correction accepted")
	}
}

func TestEstimateSettingRepairedCoversUnderResolution(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(103)
	res, err := ConstructCorrection(s, 1, root.Child(999))
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		est, err := s.EstimateSetting(degrade.Setting{SampleFraction: 0.3, Resolution: 96}, res.Correction, root.Child(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		trueErr, err := s.TrueErrorOf(est.Value)
		if err != nil {
			t.Fatal(err)
		}
		if trueErr <= est.ErrBound {
			covered++
		}
	}
	if covered < trials*9/10 {
		t.Fatalf("repaired coverage %d/%d under reduced resolution", covered, trials)
	}
}

func TestUncorrectedEstimateCanUndershoot(t *testing.T) {
	// At a destructive resolution the uncorrected bound must fail for a
	// decent share of trials — the phenomenon Figure 6 circles in red.
	// 96px biases counts substantially without zeroing them (an all-zero
	// sample would honestly degenerate to err=1 and trivially cover).
	s := testSpec(estimate.AVG)
	root := stats.NewStream(107)
	failures := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		est, err := s.UncorrectedEstimate(degrade.Setting{SampleFraction: 0.3, Resolution: 96}, root.Child(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		trueErr, _ := s.TrueErrorOf(est.Value)
		if trueErr > est.ErrBound {
			failures++
		}
	}
	if failures < trials/3 {
		t.Fatalf("uncorrected bound failed only %d/%d at 96px", failures, trials)
	}
}

func TestEstimateSettingNoiseInterventionRepaired(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(211)
	if _, err := s.EstimateSetting(degrade.Setting{SampleFraction: 0.3, NoiseSigma: 0.2}, nil, root); err == nil {
		t.Fatal("noise intervention without correction accepted")
	}
	res, err := ConstructCorrection(s, 1, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		est, err := s.EstimateSetting(degrade.Setting{SampleFraction: 0.3, NoiseSigma: 0.2}, res.Correction, root.Child(uint64(2+trial)))
		if err != nil {
			t.Fatal(err)
		}
		trueErr, err := s.TrueErrorOf(est.Value)
		if err != nil {
			t.Fatal(err)
		}
		if trueErr <= est.ErrBound {
			covered++
		}
	}
	if covered < trials*9/10 {
		t.Fatalf("repaired noise-intervention coverage %d/%d", covered, trials)
	}
}

func TestConstructCorrectionElbow(t *testing.T) {
	s := testSpec(estimate.AVG)
	res, err := ConstructCorrection(s, 1, stats.NewStream(109))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 2 {
		t.Fatalf("construction took %d steps", len(res.Steps))
	}
	// Steps grow by 1% of the corpus.
	n := s.Video.NumFrames()
	for i, step := range res.Steps {
		wantFrac := 0.01 * float64(i+1)
		if math.Abs(step.Fraction-wantFrac) > 1e-9 {
			t.Fatalf("step %d fraction %v", i, step.Fraction)
		}
		if step.Size != int(float64(n)*wantFrac+0.5) {
			t.Fatalf("step %d size %d", i, step.Size)
		}
	}
	// The stopping step improved by < 2% over its predecessor.
	last := res.Steps[len(res.Steps)-1]
	prev := res.Steps[len(res.Steps)-2]
	if prev.ErrBound-last.ErrBound >= 0.02 && last.Fraction < 1 {
		t.Fatalf("stopped while still improving: %v -> %v", prev.ErrBound, last.ErrBound)
	}
	if res.Correction.Size() != last.Size {
		t.Fatal("returned correction does not match the last step")
	}
}

func TestConstructCorrectionRespectsLimit(t *testing.T) {
	s := testSpec(estimate.AVG)
	res, err := ConstructCorrection(s, 0.02, stats.NewStream(113))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fraction > 0.02+1e-9 {
		t.Fatalf("fraction %v exceeds limit", res.Fraction)
	}
	if _, err := ConstructCorrection(s, 0.001, stats.NewStream(1)); err == nil {
		t.Fatal("limit below the growth step accepted")
	}
	if _, err := ConstructCorrection(s, 1.5, stats.NewStream(1)); err == nil {
		t.Fatal("limit above 1 accepted")
	}
}

func TestCorrectionCurveDecreases(t *testing.T) {
	s := testSpec(estimate.AVG)
	fractions := []float64{0.01, 0.05, 0.1, 0.2, 0.4}
	steps, err := CorrectionCurve(s, fractions, stats.NewStream(127))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(fractions) {
		t.Fatalf("got %d steps", len(steps))
	}
	if steps[len(steps)-1].ErrBound >= steps[0].ErrBound {
		t.Fatalf("bound did not shrink: %v -> %v", steps[0].ErrBound, steps[len(steps)-1].ErrBound)
	}
	if _, err := CorrectionCurve(s, []float64{0}, stats.NewStream(1)); err == nil {
		t.Fatal("zero fraction accepted")
	}
}

func TestBuildCorrectionAt(t *testing.T) {
	s := testSpec(estimate.MAX)
	corr, err := BuildCorrectionAt(s, 500, stats.NewStream(131))
	if err != nil {
		t.Fatal(err)
	}
	if corr.Size() != 500 {
		t.Fatalf("size %d", corr.Size())
	}
	if _, err := BuildCorrectionAt(s, 0, stats.NewStream(1)); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := BuildCorrectionAt(s, s.Video.NumFrames()+1, stats.NewStream(1)); err == nil {
		t.Fatal("oversized correction accepted")
	}
}

func TestSweepFractionsProfile(t *testing.T) {
	s := testSpec(estimate.AVG)
	fractions := []float64{0.01, 0.05, 0.1, 0.2, 0.4}
	prof, err := SweepFractions(s, SweepOptions{Fractions: fractions}, stats.NewStream(137))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Points) != len(fractions) {
		t.Fatalf("profile has %d points", len(prof.Points))
	}
	// Bounds must broadly tighten as the fraction grows.
	first := prof.Points[0].Estimate.ErrBound
	last := prof.Points[len(prof.Points)-1].Estimate.ErrBound
	if last >= first {
		t.Fatalf("bound did not tighten across the sweep: %v -> %v", first, last)
	}
	if prof.VideoName != "small" || prof.Agg != estimate.AVG {
		t.Fatal("profile metadata wrong")
	}
}

func TestSweepFractionsValidation(t *testing.T) {
	s := testSpec(estimate.AVG)
	if _, err := SweepFractions(s, SweepOptions{}, stats.NewStream(1)); err == nil {
		t.Fatal("empty fractions accepted")
	}
	if _, err := SweepFractions(s, SweepOptions{Fractions: []float64{0.2, 0.1}}, stats.NewStream(1)); err == nil {
		t.Fatal("descending fractions accepted")
	}
	if _, err := SweepFractions(s, SweepOptions{Fractions: []float64{0.1}, Setting: degrade.Setting{Resolution: 96}}, stats.NewStream(1)); err == nil {
		t.Fatal("non-random sweep without correction accepted")
	}
}

func TestSweepEarlyStops(t *testing.T) {
	s := testSpec(estimate.AVG)
	fractions := make([]float64, 40)
	for i := range fractions {
		fractions[i] = 0.01 * float64(i+1)
	}
	full, err := SweepFractions(s, SweepOptions{Fractions: fractions}, stats.NewStream(139))
	if err != nil {
		t.Fatal(err)
	}
	stopped, err := SweepFractions(s, SweepOptions{Fractions: fractions, EarlyStopDelta: 0.02}, stats.NewStream(139))
	if err != nil {
		t.Fatal(err)
	}
	if len(stopped.Points) >= len(full.Points) {
		t.Fatalf("early stop did not trim the sweep: %d vs %d", len(stopped.Points), len(full.Points))
	}
	// Identical prefix: reuse means the shared points match exactly.
	for i := range stopped.Points {
		if stopped.Points[i].Estimate != full.Points[i].Estimate {
			t.Fatalf("point %d differs between stopped and full sweeps", i)
		}
	}
}

func TestSweepNestedReuse(t *testing.T) {
	// The same stream must yield identical profiles (deterministic nested
	// sampling), and a different stream a different sample.
	s := testSpec(estimate.AVG)
	opts := SweepOptions{Fractions: []float64{0.05, 0.1}}
	a, _ := SweepFractions(s, opts, stats.NewStream(149))
	b, _ := SweepFractions(s, opts, stats.NewStream(149))
	c, _ := SweepFractions(s, opts, stats.NewStream(151))
	for i := range a.Points {
		if a.Points[i].Estimate != b.Points[i].Estimate {
			t.Fatal("sweep not deterministic")
		}
	}
	same := true
	for i := range a.Points {
		if a.Points[i].Estimate != c.Points[i].Estimate {
			same = false
		}
	}
	if same {
		t.Fatal("different streams produced identical sweeps")
	}
}

func TestBoundAtFractionInterpolation(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.1}, Estimate: estimate.Estimate{ErrBound: 0.5}},
		{Setting: degrade.Setting{SampleFraction: 0.3}, Estimate: estimate.Estimate{ErrBound: 0.1}},
	}}
	cases := []struct {
		f, want float64
	}{
		{0.05, 0.5}, {0.1, 0.5}, {0.2, 0.3}, {0.3, 0.1}, {0.5, 0.1},
	}
	for _, c := range cases {
		got, err := prof.BoundAtFraction(c.f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("BoundAtFraction(%v) = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := (&Profile{}).BoundAtFraction(0.1); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestBoundAtFractionOutOfRange(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.1}, Estimate: estimate.Estimate{ErrBound: 0.5}},
		{Setting: degrade.Setting{SampleFraction: 0.3}, Estimate: estimate.Estimate{ErrBound: 0.1}},
	}}
	// Fractions no Setting could carry are typed errors, so callers can
	// branch on them without string matching.
	for _, f := range []float64{0, -0.1, 1.0001, 2, math.NaN()} {
		_, err := prof.BoundAtFraction(f)
		if !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("BoundAtFraction(%v) error = %v, want ErrOutOfRange", f, err)
		}
	}
	_, err := (&Profile{}).BoundAtFraction(0.1)
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("empty profile error = %v, want ErrOutOfRange", err)
	}
	// f = 1 is always answerable (nearest-endpoint clamp), never an error.
	if _, err := prof.BoundAtFraction(1); err != nil {
		t.Fatalf("BoundAtFraction(1) = %v", err)
	}
}

func TestBoundAtFractionExactEndpoints(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.1}, Estimate: estimate.Estimate{ErrBound: 0.5}},
		{Setting: degrade.Setting{SampleFraction: 0.2}, Estimate: estimate.Estimate{ErrBound: 0.3}},
		{Setting: degrade.Setting{SampleFraction: 0.3}, Estimate: estimate.Estimate{ErrBound: 0.1}},
	}}
	// Queries landing exactly on profiled fractions return those points'
	// bounds with no interpolation drift.
	for _, c := range []struct{ f, want float64 }{{0.1, 0.5}, {0.2, 0.3}, {0.3, 0.1}} {
		got, err := prof.BoundAtFraction(c.f)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("BoundAtFraction(%v) = %v, want exactly %v", c.f, got, c.want)
		}
	}
}

func TestBoundAtFractionSinglePoint(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.25}, Estimate: estimate.Estimate{ErrBound: 0.4}},
	}}
	// A single-point profile clamps every valid fraction to its one bound.
	for _, f := range []float64{0.01, 0.25, 0.9, 1} {
		got, err := prof.BoundAtFraction(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0.4 {
			t.Fatalf("single-point BoundAtFraction(%v) = %v, want 0.4", f, got)
		}
	}
	if _, err := prof.BoundAtFraction(0); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("single-point profile accepted f=0")
	}
}

func TestChooseFraction(t *testing.T) {
	prof := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.05}, Estimate: estimate.Estimate{ErrBound: 0.6}},
		{Setting: degrade.Setting{SampleFraction: 0.1}, Estimate: estimate.Estimate{ErrBound: 0.2}},
		{Setting: degrade.Setting{SampleFraction: 0.3}, Estimate: estimate.Estimate{ErrBound: 0.05}},
	}}
	got, ok := prof.ChooseFraction(0.25)
	if !ok || got.SampleFraction != 0.1 {
		t.Fatalf("ChooseFraction(0.25) = %v, %v", got, ok)
	}
	if _, ok := prof.ChooseFraction(0.01); ok {
		t.Fatal("impossible threshold satisfied")
	}
}

func TestProfileDistance(t *testing.T) {
	a := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.1}, Estimate: estimate.Estimate{ErrBound: 0.5}},
		{Setting: degrade.Setting{SampleFraction: 0.2}, Estimate: estimate.Estimate{ErrBound: 0.3}},
	}}
	b := &Profile{Points: []Point{
		{Setting: degrade.Setting{SampleFraction: 0.1}, Estimate: estimate.Estimate{ErrBound: 0.4}},
		{Setting: degrade.Setting{SampleFraction: 0.2}, Estimate: estimate.Estimate{ErrBound: 0.35}},
	}}
	d, err := Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.075) > 1e-12 {
		t.Fatalf("Distance = %v, want 0.075", d)
	}
	empty := &Profile{Points: []Point{{Setting: degrade.Setting{SampleFraction: 0.9}}}}
	if _, err := Distance(a, empty); err == nil {
		t.Fatal("disjoint profiles accepted")
	}
}

func TestGenerateHypercube(t *testing.T) {
	s := testSpec(estimate.AVG)
	root := stats.NewStream(157)
	res, err := ConstructCorrection(s, 1, root.Child(1))
	if err != nil {
		t.Fatal(err)
	}
	fractions := []float64{0.02, 0.1}
	cube, err := GenerateHypercube(s, fractions, res.Correction, root.Child(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Bounds) != 4 {
		t.Fatalf("combo axis %d", len(cube.Bounds))
	}
	if len(cube.Bounds[0]) != len(cube.Resolutions) {
		t.Fatal("resolution axis wrong")
	}
	// The loosest slice must be fully feasible.
	for fi := range fractions {
		if math.IsNaN(cube.Bounds[0][0][fi]) {
			t.Fatalf("loosest cell (0,0,%d) infeasible", fi)
		}
	}
	// Person removal on the dense corpus is infeasible at these fractions.
	personIdx := -1
	for ci, combo := range cube.Combos {
		if len(combo) == 1 && combo[0] == scene.Person {
			personIdx = ci
		}
	}
	if personIdx < 0 {
		t.Fatal("person combo missing")
	}
	if !math.IsNaN(cube.Bounds[personIdx][0][1]) {
		t.Fatal("expected infeasible cell under person removal at f=0.1")
	}
	// Slices agree with the underlying array.
	slice := cube.SliceByFraction(0, 0)
	if len(slice) != len(fractions) {
		t.Fatal("fraction slice length")
	}
	rSlice := cube.SliceByResolution(0, 0)
	if len(rSlice) != len(cube.Resolutions) {
		t.Fatal("resolution slice length")
	}
	if _, err := GenerateHypercube(s, fractions, nil, root, 0); err == nil {
		t.Fatal("hypercube without correction accepted")
	}
}

func TestHypercubeChooseTradeoff(t *testing.T) {
	cube := &Hypercube{
		Fractions:   []float64{0.1, 0.5},
		Resolutions: []int{608, 320},
		Combos:      [][]scene.Class{nil, {scene.Face}},
		Bounds: [][][]float64{
			{{0.3, 0.1}, {0.4, 0.2}},
			{{0.35, 0.12}, {math.NaN(), 0.22}},
		},
	}
	// With maxErr 0.25: feasible cells are (0,0,f=0.5):0.1 score 0.5*608^2,
	// (0,1,f=0.5):0.2 score 0.5*320^2, (1,0,f=0.5):0.12, (1,1,f=0.5):0.22.
	// Lowest pixel volume: 0.5*320^2 with face removal preferred.
	got, ok := cube.ChooseTradeoff(0.25)
	if !ok {
		t.Fatal("no tradeoff found")
	}
	if got.SampleFraction != 0.5 || got.Resolution != 320 || len(got.Restricted) != 1 {
		t.Fatalf("ChooseTradeoff = %v", got)
	}
	if _, ok := cube.ChooseTradeoff(0.01); ok {
		t.Fatal("impossible threshold satisfied")
	}
}

func TestBoundAtFractionStaysWithinEnvelope(t *testing.T) {
	// Interpolated bounds never escape the envelope of the profiled points.
	prof := &Profile{}
	boundsByF := map[float64]float64{
		0.05: 0.8, 0.1: 0.45, 0.2: 0.3, 0.4: 0.12, 0.8: 0.05,
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for f, b := range boundsByF {
		prof.Points = append(prof.Points, Point{
			Setting:  degrade.Setting{SampleFraction: f},
			Estimate: estimate.Estimate{ErrBound: b},
		})
		lo = math.Min(lo, b)
		hi = math.Max(hi, b)
	}
	for f := 0.01; f <= 1.0; f += 0.013 {
		got, err := prof.BoundAtFraction(f)
		if err != nil {
			t.Fatal(err)
		}
		if got < lo-1e-12 || got > hi+1e-12 {
			t.Fatalf("interpolation escaped envelope at f=%v: %v not in [%v,%v]", f, got, lo, hi)
		}
	}
}
