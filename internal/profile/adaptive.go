package profile

import (
	"context"
	"fmt"

	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/stats"
)

// Adaptive execution: sample frames one at a time until the error bound
// reaches a target — the stopping-rule usage the empirical Bernstein
// stopping algorithm (the paper's EBGS baseline) was designed for, built
// here on the any-time Hoeffding-Serfling streaming estimator so that
// stopping adaptively keeps the 1-delta guarantee. Detection stays lazy:
// only the frames actually observed invoke the model, so an easy query
// stops after a few dozen frames.

// AdaptiveResult reports an adaptive run.
type AdaptiveResult struct {
	Estimate estimate.Estimate
	// Met reports whether the target was reached before the frame budget.
	Met bool
	// FramesUsed is the number of frames observed (and detected).
	FramesUsed int
}

// RunUntil samples admissible frames without replacement, observing each
// through the spec's model at the setting's resolution, until the
// any-time error bound drops to targetErr or the frame budget
// (maxFraction of the corpus) is exhausted. Only mean-type aggregates are
// supported (the streaming estimator's constraint); non-random settings
// are rejected because an adaptively-stopped biased sample cannot be
// repaired soundly mid-stream.
func RunUntil(spec *Spec, setting degrade.Setting, targetErr, maxFraction float64, stream *stats.Stream) (*AdaptiveResult, error) {
	return RunUntilCtx(context.Background(), spec, setting, targetErr, maxFraction, stream)
}

// RunUntilCtx is RunUntil with cancellation: the per-batch detector work
// aborts when ctx is done, and no partial result is returned.
func RunUntilCtx(ctx context.Context, spec *Spec, setting degrade.Setting, targetErr, maxFraction float64, stream *stats.Stream) (*AdaptiveResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if targetErr <= 0 || targetErr >= 1 {
		return nil, fmt.Errorf("profile: target error %v out of (0,1)", targetErr)
	}
	if maxFraction <= 0 || maxFraction > 1 {
		return nil, fmt.Errorf("profile: max fraction %v out of (0,1]", maxFraction)
	}
	if !setting.IsRandomOnly(spec.Model) {
		return nil, fmt.Errorf("profile: adaptive execution requires random-only interventions, got %v", setting)
	}
	if err := setting.Validate(spec.Model); err != nil {
		return nil, err
	}

	n := spec.Video.NumFrames()
	budget := int(float64(n) * maxFraction)
	if budget < 1 {
		budget = 1
	}
	est, err := estimate.NewStreamingEstimator(spec.Agg, n, spec.Params, true)
	if err != nil {
		return nil, err
	}

	admissible, err := degrade.AdmissibleFramesCtx(ctx, spec.Video, setting.Restricted)
	if err != nil {
		return nil, err
	}
	if budget > len(admissible) {
		budget = len(admissible)
	}
	perm := stream.Perm(len(admissible))
	resolution := setting.ResolveResolution(spec.Model)

	// Observe in small batches: detection parallelises across a batch
	// while the stopping check stays fine-grained.
	const batch = 16
	out := &AdaptiveResult{}
	for start := 0; start < budget; start += batch {
		end := start + batch
		if end > budget {
			end = budget
		}
		frames := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			frames = append(frames, admissible[perm[i]])
		}
		values, err := spec.outputsAtResolution(ctx, resolution, frames)
		if err != nil {
			return nil, err
		}
		for _, x := range values {
			out.Estimate = est.Observe(spec.transform(x))
			out.FramesUsed++
			if out.Estimate.ErrBound <= targetErr {
				out.Met = true
				return out, nil
			}
		}
	}
	return out, nil
}

// outputsAtResolution evaluates raw outputs for explicit frames at an
// explicit resolution (RunUntil streams at the setting's resolution, which
// for random-only settings is the model's native input).
func (s *Spec) outputsAtResolution(ctx context.Context, p int, frames []int) ([]float64, error) {
	plan := &degrade.Plan{Resolution: p, Sampled: frames, Total: s.Video.NumFrames()}
	return degrade.SampleOutputsCtx(ctx, s.Video, s.Model, s.Class, plan)
}
