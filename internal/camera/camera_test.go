package camera

import (
	"context"
	"math"
	"net"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/outputs"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

// runSession streams the setting over an in-process pipe and returns the
// camera report, the receiver session and per-frame car counts computed by
// central-side detection on the transmitted pixels.
func runSession(t *testing.T, setting degrade.Setting) (Report, *Session, map[int]int) {
	t.Helper()
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	node := &Node{Video: v, Model: m, Setting: setting, Energy: DefaultEnergyModel()}

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	reportCh := make(chan Report, 1)
	errCh := make(chan error, 1)
	go func() {
		report, err := node.Stream(transport.New(client), stats.NewStream(11))
		reportCh <- report
		errCh <- err
	}()

	counts := map[int]int{}
	session, err := Receive(transport.New(server), func(s *Session, fr ReceivedFrame) error {
		counts[fr.Index] = detect.CountClass(s.Detect(m, fr), scene.Car)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return <-reportCh, session, counts
}

func TestStreamEndToEnd(t *testing.T) {
	setting := degrade.Setting{SampleFraction: 0.05, Resolution: 160}
	report, session, counts := runSession(t, setting)

	v := dataset.MustLoad("small")
	wantFrames := int(float64(v.NumFrames())*0.05 + 0.5)
	if report.FramesTransmitted != wantFrames {
		t.Fatalf("transmitted %d frames, want %d", report.FramesTransmitted, wantFrames)
	}
	if len(counts) != wantFrames {
		t.Fatalf("received %d frames", len(counts))
	}
	if session.Config.Resolution != 160 || session.Config.CaptureWidth != v.Config.Width {
		t.Fatalf("session config %+v", session.Config)
	}
	if session.Config.TotalFrames != v.NumFrames() {
		t.Fatalf("TotalFrames = %d", session.Config.TotalFrames)
	}
	if report.BytesTransmitted <= 0 || report.TotalJoules() <= 0 {
		t.Fatal("accounting empty")
	}
	if report.CaptureJoules <= 0 || report.ComputeJoules <= 0 || report.TransmitJoules <= 0 {
		t.Fatalf("energy breakdown incomplete: %+v", report)
	}
}

func TestCentralDetectionMatchesLocal(t *testing.T) {
	// Counts computed on transmitted pixels must broadly agree with the
	// local full-frame reference on the same frames.
	_, _, counts := runSession(t, degrade.Setting{SampleFraction: 0.04, Resolution: 320})
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	var transmittedSum, localSum, absDiff float64
	for idx, got := range counts {
		local := detect.CountClass(m.DetectFrameFull(v, idx, 320), scene.Car)
		transmittedSum += float64(got)
		localSum += float64(local)
		absDiff += math.Abs(float64(got - local))
	}
	if transmittedSum == 0 && localSum == 0 {
		t.Fatal("no detections at all")
	}
	n := float64(len(counts))
	if absDiff/n > 0.5 {
		t.Fatalf("mean per-frame deviation %v between wire and local detection", absDiff/n)
	}
}

func TestDegradationSavesBandwidthAndEnergy(t *testing.T) {
	full, _, _ := runSession(t, degrade.Setting{SampleFraction: 0.05, Resolution: 320})
	degraded, _, _ := runSession(t, degrade.Setting{SampleFraction: 0.02, Resolution: 96})
	if degraded.BytesTransmitted*2 >= full.BytesTransmitted {
		t.Fatalf("degradation saved too little bandwidth: %d vs %d", degraded.BytesTransmitted, full.BytesTransmitted)
	}
	if degraded.TotalJoules() >= full.TotalJoules() {
		t.Fatalf("degradation did not save energy: %v vs %v", degraded.TotalJoules(), full.TotalJoules())
	}
}

func TestImageRemovalNeverTransmitsRestricted(t *testing.T) {
	_, _, counts := runSession(t, degrade.Setting{SampleFraction: 0.03, Resolution: 320, Restricted: []scene.Class{scene.Face}})
	v := dataset.MustLoad("small")
	present, err := outputs.Presence(context.Background(), v, scene.Face)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range counts {
		if present[idx] {
			t.Fatalf("restricted frame %d left the camera", idx)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := Config{Name: "cam-1", CaptureWidth: 640, NoiseSigma: 0.0325, Resolution: 128, TotalFrames: 1234}
	got, err := decodeConfig(cfg.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip %+v != %+v", got, cfg)
	}
}

func TestDecodeConfigRejectsCorruption(t *testing.T) {
	cfg := Config{Name: "c", CaptureWidth: 640, NoiseSigma: 0.02, Resolution: 128, TotalFrames: 10}
	good := cfg.encode()
	for cut := 0; cut < len(good)-1; cut++ {
		if _, err := decodeConfig(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReceiveProtocolErrors(t *testing.T) {
	// Frame before config must be rejected.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		c := transport.New(client)
		_ = c.Send(transport.MsgFrame, []byte{0})
	}()
	if _, err := Receive(transport.New(server), nil); err == nil {
		t.Fatal("frame before config accepted")
	}
}

func TestStreamRejectsInfeasibleSetting(t *testing.T) {
	v := dataset.MustLoad("small")
	node := &Node{
		Video:   v,
		Model:   detect.YOLOv4Sim(),
		Setting: degrade.Setting{SampleFraction: 1, Restricted: []scene.Class{scene.Person}},
		Energy:  DefaultEnergyModel(),
	}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		c := transport.New(server)
		for {
			if _, _, err := c.Receive(); err != nil {
				return
			}
		}
	}()
	if _, err := node.Stream(transport.New(client), stats.NewStream(1)); err == nil {
		t.Fatal("infeasible setting accepted")
	}
}

func TestReceiveSurvivesPeerDisconnect(t *testing.T) {
	// The camera dies mid-stream (after config but before MsgEnd); Receive
	// must return an error, not hang or fabricate a session.
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		conn := transport.New(client)
		cfg := Config{Name: "dying", CaptureWidth: 320, NoiseSigma: 0.01, Resolution: 160, TotalFrames: 100}
		_ = conn.Send(transport.MsgConfig, cfg.encode())
		client.Close() // abrupt death before the background and frames
	}()
	_, err := Receive(transport.New(server), nil)
	if err == nil {
		t.Fatal("Receive succeeded on a dropped stream")
	}
}

func TestReceiveRejectsUnknownMessageType(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		c := transport.New(client)
		cfg := Config{Name: "x", CaptureWidth: 320, NoiseSigma: 0.01, Resolution: 160, TotalFrames: 10}
		_ = c.Send(transport.MsgConfig, cfg.encode())
		_ = c.Send(99, []byte{1, 2, 3})
	}()
	if _, err := Receive(transport.New(server), nil); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

func TestReportTotalJoules(t *testing.T) {
	r := Report{CaptureJoules: 1, ComputeJoules: 2, TransmitJoules: 3}
	if r.TotalJoules() != 6 {
		t.Fatalf("TotalJoules = %v", r.TotalJoules())
	}
}

func TestDefaultEnergyModelPositive(t *testing.T) {
	e := DefaultEnergyModel()
	if e.JoulesPerByte <= 0 || e.JoulesPerCapture <= 0 || e.JoulesPerPixel <= 0 {
		t.Fatalf("energy model has non-positive rates: %+v", e)
	}
}
