// Package camera simulates the configurable networked cameras of the
// paper's system model (Section 1): each camera collects frames, applies
// the administrator-chosen destructive interventions on-device, and
// transmits the degraded frames to the central video query processor. The
// package quantifies the *benefit* side of the tradeoff curves: how many
// bytes and joules a given intervention setting saves.
package camera

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"smokescreen/internal/codec"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

// EnergyModel prices the camera's work. The defaults are loosely modelled
// on embedded-camera measurements (capture dominated by sensor readout,
// transmission by the radio), but only the *relative* savings matter to
// the experiments.
type EnergyModel struct {
	JoulesPerCapture float64 // sensor readout per captured frame
	JoulesPerPixel   float64 // on-device processing (downsample, encode)
	JoulesPerByte    float64 // radio transmission
}

// DefaultEnergyModel returns the model used by the examples: 50 mJ per
// capture, 2 nJ per processed pixel, 1 µJ per transmitted byte.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		JoulesPerCapture: 0.05,
		JoulesPerPixel:   2e-9,
		JoulesPerByte:    1e-6,
	}
}

// Report summarises one streaming session.
type Report struct {
	FramesCaptured    int
	FramesTransmitted int
	BytesTransmitted  int64
	CaptureJoules     float64
	ComputeJoules     float64
	TransmitJoules    float64
}

// TotalJoules returns the session's total energy cost.
func (r Report) TotalJoules() float64 {
	return r.CaptureJoules + r.ComputeJoules + r.TransmitJoules
}

// Config is the camera's capture specification, announced to the receiver
// in the MsgConfig message.
type Config struct {
	Name         string
	CaptureWidth int     // native sensor resolution
	NoiseSigma   float64 // sensor noise at native resolution
	Resolution   int     // transmission resolution after degradation
	TotalFrames  int     // N, so the receiver can scale SUM-type answers
}

// encode serialises the config message payload.
func (c Config) encode() []byte {
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
	buf = append(buf, c.Name...)
	buf = binary.AppendUvarint(buf, uint64(c.CaptureWidth))
	buf = binary.AppendUvarint(buf, math.Float64bits(c.NoiseSigma))
	buf = binary.AppendUvarint(buf, uint64(c.Resolution))
	buf = binary.AppendUvarint(buf, uint64(c.TotalFrames))
	return buf
}

// DecodeConfig parses a MsgConfig payload. Exported for receivers that
// run their own message loop (the streaming-ingest subsystem handles
// back-to-back sessions and per-message cancellation, which the simple
// Receive loop below does not).
func DecodeConfig(payload []byte) (Config, error) {
	return decodeConfig(payload)
}

func decodeConfig(payload []byte) (Config, error) {
	var c Config
	r := newSliceReader(payload)
	nameLen, err := r.uvarint()
	if err != nil {
		return c, err
	}
	name, err := r.bytes(int(nameLen))
	if err != nil {
		return c, err
	}
	c.Name = string(name)
	fields := [4]uint64{}
	for i := range fields {
		if fields[i], err = r.uvarint(); err != nil {
			return c, err
		}
	}
	c.CaptureWidth = int(fields[0])
	c.NoiseSigma = math.Float64frombits(fields[1])
	c.Resolution = int(fields[2])
	c.TotalFrames = int(fields[3])
	if c.CaptureWidth <= 0 || c.Resolution <= 0 || c.TotalFrames < 0 {
		return c, fmt.Errorf("camera: corrupt config %+v", c)
	}
	return c, nil
}

// Node is one camera bound to a scene and an intervention setting.
type Node struct {
	Video   *scene.Video
	Model   *detect.Model // determines native input and removal priors
	Setting degrade.Setting
	Energy  EnergyModel
}

// Stream captures, degrades, encodes and transmits the configured portion
// of the video over conn, returning the session report. The sequence is:
// MsgConfig, MsgBackground, one MsgFrame per sampled admissible frame,
// MsgEnd. Frames are rendered at native resolution (capture), downsampled
// on-device, noised with the effective sensor noise, and shipped as
// compressed rasters — the receiver never sees the restricted frames or
// the native-resolution pixels.
func (n *Node) Stream(conn *transport.Conn, stream *stats.Stream) (Report, error) {
	return n.StreamCtx(context.Background(), conn, stream)
}

// StreamCtx is Stream with cancellation: the context is checked before
// every frame capture, so tearing down a live ingest session stops the
// camera's render/encode work promptly instead of at end-of-corpus.
func (n *Node) StreamCtx(ctx context.Context, conn *transport.Conn, stream *stats.Stream) (Report, error) {
	var report Report
	plan, err := degrade.ApplyCtx(ctx, n.Video, n.Model, n.Setting, stream)
	if err != nil {
		return report, fmt.Errorf("camera: applying interventions: %w", err)
	}
	cfg := Config{
		Name:         n.Video.Config.Name,
		CaptureWidth: n.Video.Config.Width,
		NoiseSigma:   float64(n.Video.Config.Lighting.NoiseSigma),
		Resolution:   plan.Resolution,
		TotalFrames:  plan.Total,
	}
	if err := conn.Send(transport.MsgConfig, cfg.encode()); err != nil {
		return report, err
	}

	p := plan.Resolution
	bg := raster.Downsample(n.Video.Background(), p, p)
	bgBlock, err := codec.EncodeFrame(&codec.FrameRecord{Index: -1, Raster: bg})
	if err != nil {
		return report, err
	}
	if err := conn.Send(transport.MsgBackground, bgBlock); err != nil {
		return report, err
	}

	scale := float64(p) / float64(n.Video.Config.Width)
	sigmaEff := float32(math.Max(0.004, float64(n.Video.Config.Lighting.NoiseSigma)*scale))
	for _, idx := range plan.Sampled {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		report.FramesCaptured++
		report.CaptureJoules += n.Energy.JoulesPerCapture

		native := n.Video.RenderNative(idx)
		img := raster.Downsample(native, p, p)
		img.AddNoise(frameSeed(n.Video.Config.Seed, idx, p), sigmaEff)
		report.ComputeJoules += n.Energy.JoulesPerPixel * float64(native.W*native.H+p*p)

		block, err := codec.EncodeFrame(&codec.FrameRecord{Index: idx, Raster: img})
		if err != nil {
			return report, err
		}
		if err := conn.Send(transport.MsgFrame, block); err != nil {
			return report, err
		}
		report.FramesTransmitted++
	}
	if err := conn.Send(transport.MsgEnd, nil); err != nil {
		return report, err
	}
	report.BytesTransmitted = conn.BytesSent()
	report.TransmitJoules = n.Energy.JoulesPerByte * float64(report.BytesTransmitted)
	return report, nil
}

// frameSeed mirrors the detect package's full-frame noise seeding so
// transmitted pixels match what DetectFrameFull would have seen locally.
func frameSeed(corpusSeed uint64, frame, p int) uint64 {
	z := corpusSeed ^ 0x66726d65
	for _, v := range []uint64{uint64(frame), uint64(p)} {
		z ^= v
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// ReceivedFrame is one frame as seen by the central processor.
type ReceivedFrame struct {
	Index  int
	Raster *raster.Image
}

// Session is the receiving side of a camera stream: the central query
// processor's view.
type Session struct {
	Config     Config
	Background *raster.Image
}

// Receive consumes a camera stream from conn, invoking handle for every
// frame. It returns the session after MsgEnd (or an error).
func Receive(conn *transport.Conn, handle func(*Session, ReceivedFrame) error) (*Session, error) {
	var session *Session
	for {
		msgType, payload, err := conn.Receive()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("camera: stream ended before MsgEnd")
			}
			return nil, err
		}
		switch msgType {
		case transport.MsgConfig:
			cfg, err := decodeConfig(payload)
			if err != nil {
				return nil, err
			}
			session = &Session{Config: cfg}
		case transport.MsgBackground:
			if session == nil {
				return nil, fmt.Errorf("camera: background before config")
			}
			fr, err := codec.DecodeFrame(payload)
			if err != nil {
				return nil, err
			}
			if fr.Raster == nil {
				return nil, fmt.Errorf("camera: background message without pixels")
			}
			session.Background = fr.Raster
		case transport.MsgFrame:
			if session == nil || session.Background == nil {
				return nil, fmt.Errorf("camera: frame before config/background")
			}
			fr, err := codec.DecodeFrame(payload)
			if err != nil {
				return nil, err
			}
			if fr.Raster == nil {
				return nil, fmt.Errorf("camera: frame message without pixels")
			}
			if handle != nil {
				if err := handle(session, ReceivedFrame{Index: fr.Index, Raster: fr.Raster}); err != nil {
					return nil, err
				}
			}
		case transport.MsgEnd:
			if session == nil {
				return nil, fmt.Errorf("camera: end before config")
			}
			return session, nil
		default:
			return nil, fmt.Errorf("camera: unknown message type %d", msgType)
		}
	}
}

// Detect runs the model on a received frame against the session's
// transmitted background — central-side inference on degraded pixels only.
func (s *Session) Detect(m *detect.Model, fr ReceivedFrame) []detect.Detection {
	return m.DetectPixels(fr.Raster, s.Background, s.Config.NoiseSigma, s.Config.CaptureWidth, uint64(fr.Index))
}

// sliceReader is a tiny cursor over a payload slice.
type sliceReader struct {
	buf []byte
	off int
}

func newSliceReader(buf []byte) *sliceReader { return &sliceReader{buf: buf} }

func (r *sliceReader) ReadByte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *sliceReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r)
}

func (r *sliceReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}
