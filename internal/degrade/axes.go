package degrade

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
)

// This file is the intervention-axis registry: the one place that knows
// which axes exist, whether each is random, how it validates, renders,
// folds into a pixel-space view, persists into profile keys, and orders
// for ladder monotonicity. Every layer above — plan candidates, profile
// persistence, the server, the CLIs — iterates the registry instead of
// pattern-matching on Setting fields, so adding an intervention is a
// single Axis entry plus its scene-side transform.

// KeyField is one canonical (label, value) pair an axis contributes to a
// profile's content address. Labels and value renderings are part of the
// persistence format: changing them changes every stored key.
type KeyField struct {
	Label, Value string
}

// Axis describes one intervention axis of the Setting vector.
type Axis struct {
	// Name is the axis's canonical lowercase identifier.
	Name string
	// Random reports whether the axis is a random intervention in the
	// paper's sense (Section 3.2.5): sampling-like, leaving the output
	// distribution of processed frames unchanged. Any active non-random
	// axis routes the setting through Algorithm 3 profile repair.
	Random bool
	// Active reports whether the axis deviates from the identity in s.
	Active func(s Setting, m *detect.Model) bool
	// Validate checks s's value on this axis against the model's limits.
	Validate func(s Setting, m *detect.Model) error
	// Format renders the axis for Setting.String, or "" when inactive.
	Format func(s Setting) string
	// Fold accumulates the axis into a pixel-space view; nil for axes that
	// do not transform pixels at render time (sampling, resolution,
	// removal — those act on frame choice and detector input size).
	Fold func(s Setting, vw *scene.View)
	// Key returns the canonical persistence fields the axis contributes to
	// a profile key, already in emission order. Legacy axes (resolution,
	// removal, noise) always emit — their zero renderings are part of every
	// stored PR 8 key — while newer axes emit only when active, keeping
	// legacy settings' keys byte-identical.
	Key func(s Setting) []KeyField
	// Tighter reports whether next degrades at least as hard as prev on
	// this axis — the ladder monotonicity order (tier k+1 must be Tighter
	// on every axis).
	Tighter func(prev, next Setting, m *detect.Model) bool
	// Clause is the axis's query-language clause, or nil for axes the
	// query layer cannot set.
	Clause *AxisClause
}

// AxisClause binds an axis to its query-language clause: the keyword,
// the human name of its argument (used in parse errors), the setter for
// the clause's single numeric argument, and the canonical rendering used
// when a query is printed back ("" when the axis sits at identity). The
// query parser and printer iterate these instead of hand-rolling a
// keyword switch, so a new axis becomes parseable and printable by
// registering it here. Axes whose clause takes a non-numeric argument
// (removal's class list) leave Set nil and keep their parsing in the
// query layer while still rendering through the registry.
type AxisClause struct {
	Keyword string
	Arg     string
	Set     func(v float64, s *Setting) error
	Render  func(s Setting) string
}

// axes is the registry, in canonical order: the sampling axis first, then
// the non-sampling axes in their String()/persistence order.
var axes = []Axis{
	{
		Name:   "fraction",
		Random: true,
		Active: func(s Setting, m *detect.Model) bool { return s.SampleFraction < 1 },
		Validate: func(s Setting, m *detect.Model) error {
			if s.SampleFraction <= 0 || s.SampleFraction > 1 {
				return fmt.Errorf("degrade: sample fraction %v out of (0,1]", s.SampleFraction)
			}
			return nil
		},
		Format:  func(s Setting) string { return fmt.Sprintf("f=%.4g", s.SampleFraction) },
		Key:     func(s Setting) []KeyField { return nil },
		Tighter: func(prev, next Setting, m *detect.Model) bool { return next.SampleFraction <= prev.SampleFraction },
		Clause: &AxisClause{
			Keyword: "SAMPLE", Arg: "sample fraction",
			Set: func(v float64, s *Setting) error {
				if v <= 0 || v > 1 {
					return fmt.Errorf("degrade: sample fraction %v out of (0,1]", v)
				}
				s.SampleFraction = v
				return nil
			},
			Render: func(s Setting) string {
				if s.SampleFraction != 1 {
					return fmt.Sprintf("%g", s.SampleFraction)
				}
				return ""
			},
		},
	},
	{
		Name: "resolution",
		Active: func(s Setting, m *detect.Model) bool {
			return s.Resolution != 0 && s.Resolution != m.NativeInput
		},
		Validate: func(s Setting, m *detect.Model) error {
			if s.Resolution != 0 && !m.ValidResolution(s.Resolution) {
				return fmt.Errorf("degrade: resolution %d invalid for %s (multiple of %d, max %d)",
					s.Resolution, m.Name, m.InputMultiple, m.NativeInput)
			}
			return nil
		},
		Format: func(s Setting) string {
			if s.Resolution != 0 {
				return fmt.Sprintf("p=%dx%d", s.Resolution, s.Resolution)
			}
			return "p=native"
		},
		Key: func(s Setting) []KeyField {
			return []KeyField{{"resolution", strconv.Itoa(s.Resolution)}}
		},
		Tighter: func(prev, next Setting, m *detect.Model) bool {
			return next.ResolveResolution(m) <= prev.ResolveResolution(m)
		},
		Clause: &AxisClause{
			Keyword: "RESOLUTION", Arg: "resolution",
			// Model-dependent validity is checked by Validate at plan
			// time; the clause only stores the requested pixels.
			Set: func(v float64, s *Setting) error {
				s.Resolution = int(v)
				return nil
			},
			Render: func(s Setting) string {
				if s.Resolution != 0 {
					return fmt.Sprintf("%d", s.Resolution)
				}
				return ""
			},
		},
	},
	{
		Name:   "removal",
		Active: func(s Setting, m *detect.Model) bool { return len(s.Restricted) > 0 },
		Validate: func(s Setting, m *detect.Model) error {
			seen := map[scene.Class]bool{}
			for _, c := range s.Restricted {
				if seen[c] {
					return fmt.Errorf("degrade: duplicate restricted class %v", c)
				}
				seen[c] = true
			}
			return nil
		},
		Format: func(s Setting) string {
			if len(s.Restricted) == 0 {
				return "c=none"
			}
			names := make([]string, len(s.Restricted))
			for i, c := range s.Restricted {
				names[i] = c.String()
			}
			return "c=" + strings.Join(names, "+")
		},
		Key: func(s Setting) []KeyField {
			names := make([]string, len(s.Restricted))
			for i, c := range s.Restricted {
				names[i] = c.String()
			}
			sort.Strings(names)
			fields := make([]KeyField, len(names))
			for i, name := range names {
				fields[i] = KeyField{"restricted", name}
			}
			return fields
		},
		Tighter: func(prev, next Setting, m *detect.Model) bool {
			have := map[scene.Class]bool{}
			for _, c := range next.Restricted {
				have[c] = true
			}
			for _, c := range prev.Restricted {
				if !have[c] {
					return false
				}
			}
			return true
		},
		Clause: &AxisClause{
			Keyword: "REMOVE", Arg: "class list",
			// The clause argument is a class list, not a number: parsing
			// stays in the query layer (Set nil), rendering is canonical.
			Render: func(s Setting) string {
				if len(s.Restricted) == 0 {
					return ""
				}
				names := make([]string, len(s.Restricted))
				for i, c := range s.Restricted {
					names[i] = c.String()
				}
				return strings.Join(names, ",")
			},
		},
	},
	{
		Name:   "noise",
		Active: func(s Setting, m *detect.Model) bool { return s.NoiseSigma > 0 },
		Validate: func(s Setting, m *detect.Model) error {
			if s.NoiseSigma < 0 || s.NoiseSigma > 0.5 {
				return fmt.Errorf("degrade: noise sigma %v out of [0,0.5]", s.NoiseSigma)
			}
			return nil
		},
		Format: func(s Setting) string {
			if s.NoiseSigma > 0 {
				return fmt.Sprintf("noise=%.3g", s.NoiseSigma)
			}
			return ""
		},
		Fold: func(s Setting, vw *scene.View) { vw.ExtraNoise = float32(s.NoiseSigma) },
		Key: func(s Setting) []KeyField {
			return []KeyField{{"noise", strconv.FormatFloat(s.NoiseSigma, 'g', -1, 64)}}
		},
		Tighter: func(prev, next Setting, m *detect.Model) bool { return next.NoiseSigma >= prev.NoiseSigma },
		Clause: &AxisClause{
			Keyword: "NOISE", Arg: "noise sigma",
			Set: func(v float64, s *Setting) error {
				if v < 0 || v > 0.5 {
					return fmt.Errorf("degrade: noise sigma %v out of [0,0.5]", v)
				}
				s.NoiseSigma = v
				return nil
			},
			Render: func(s Setting) string {
				if s.NoiseSigma > 0 {
					return fmt.Sprintf("%g", s.NoiseSigma)
				}
				return ""
			},
		},
	},
	{
		Name:   "blur",
		Active: func(s Setting, m *detect.Model) bool { return s.MotionBlur > 1 },
		Validate: func(s Setting, m *detect.Model) error {
			if s.MotionBlur < 0 || s.MotionBlur > scene.MaxBlurLen {
				return fmt.Errorf("degrade: motion blur length %d out of [0,%d]", s.MotionBlur, scene.MaxBlurLen)
			}
			return nil
		},
		Format: func(s Setting) string {
			if s.MotionBlur > 1 {
				return fmt.Sprintf("blur=%d", s.MotionBlur)
			}
			return ""
		},
		Fold: func(s Setting, vw *scene.View) { vw.BlurLen = s.MotionBlur },
		Key: func(s Setting) []KeyField {
			if s.MotionBlur <= 1 {
				return nil
			}
			return []KeyField{{"blur", strconv.Itoa(s.MotionBlur)}}
		},
		Tighter: func(prev, next Setting, m *detect.Model) bool {
			return effectiveBlur(next) >= effectiveBlur(prev)
		},
		Clause: &AxisClause{
			Keyword: "BLUR", Arg: "blur length",
			Set: func(v float64, s *Setting) error {
				n := int(v)
				if v != float64(n) || n < 0 || n > scene.MaxBlurLen {
					return fmt.Errorf("degrade: blur length %v not an integer in [0,%d]", v, scene.MaxBlurLen)
				}
				s.MotionBlur = n
				return nil
			},
			Render: func(s Setting) string {
				if s.MotionBlur > 1 {
					return fmt.Sprintf("%d", s.MotionBlur)
				}
				return ""
			},
		},
	},
	{
		Name:   "quantize",
		Active: func(s Setting, m *detect.Model) bool { return s.Quantize >= 2 },
		Validate: func(s Setting, m *detect.Model) error {
			if s.Quantize < 0 || s.Quantize == 1 || s.Quantize > 256 {
				return fmt.Errorf("degrade: quantization levels %d not 0 or in [2,256]", s.Quantize)
			}
			return nil
		},
		Format: func(s Setting) string {
			if s.Quantize >= 2 {
				return fmt.Sprintf("quant=%d", s.Quantize)
			}
			return ""
		},
		Fold: func(s Setting, vw *scene.View) { vw.Levels = s.Quantize },
		Key: func(s Setting) []KeyField {
			if s.Quantize < 2 {
				return nil
			}
			return []KeyField{{"quantize", strconv.Itoa(s.Quantize)}}
		},
		Tighter: func(prev, next Setting, m *detect.Model) bool {
			return effectiveLevels(next) <= effectiveLevels(prev)
		},
		Clause: &AxisClause{
			Keyword: "QUANTIZE", Arg: "quantization levels",
			Set: func(v float64, s *Setting) error {
				n := int(v)
				if v != float64(n) || n < 2 || n > 256 {
					return fmt.Errorf("degrade: quantization levels %v not an integer in [2,256]", v)
				}
				s.Quantize = n
				return nil
			},
			Render: func(s Setting) string {
				if s.Quantize >= 2 {
					return fmt.Sprintf("%d", s.Quantize)
				}
				return ""
			},
		},
	},
	{
		Name:   "occlusion",
		Active: func(s Setting, m *detect.Model) bool { return s.Occlusion > 0 },
		Validate: func(s Setting, m *detect.Model) error {
			if s.Occlusion < 0 || s.Occlusion > 0.5 {
				return fmt.Errorf("degrade: occlusion density %v out of [0,0.5]", s.Occlusion)
			}
			return nil
		},
		Format: func(s Setting) string {
			if s.Occlusion > 0 {
				return fmt.Sprintf("occl=%.3g", s.Occlusion)
			}
			return ""
		},
		Fold: func(s Setting, vw *scene.View) { vw.Occlusion = s.Occlusion },
		Key: func(s Setting) []KeyField {
			if s.Occlusion <= 0 {
				return nil
			}
			return []KeyField{{"occlusion", strconv.FormatFloat(s.Occlusion, 'g', -1, 64)}}
		},
		Tighter: func(prev, next Setting, m *detect.Model) bool { return next.Occlusion >= prev.Occlusion },
		Clause: &AxisClause{
			Keyword: "OCCLUDE", Arg: "occlusion density",
			Set: func(v float64, s *Setting) error {
				if v < 0 || v > 0.5 {
					return fmt.Errorf("degrade: occlusion density %v out of [0,0.5]", v)
				}
				s.Occlusion = v
				return nil
			},
			Render: func(s Setting) string {
				if s.Occlusion > 0 {
					return fmt.Sprintf("%g", s.Occlusion)
				}
				return ""
			},
		},
	},
}

// effectiveBlur maps the identity renderings 0 and 1 to one value so the
// ladder order treats them as equal.
func effectiveBlur(s Setting) int {
	if s.MotionBlur <= 1 {
		return 1
	}
	return s.MotionBlur
}

// effectiveLevels maps "no quantization" to one more than the maximum so
// fewer levels is always tighter.
func effectiveLevels(s Setting) int {
	if s.Quantize < 2 {
		return 257
	}
	return s.Quantize
}

// Axes returns the registered intervention axes in canonical order. The
// slice is shared: callers must not mutate it.
func Axes() []Axis { return axes }

// ClauseFor returns the axis clause registered for a query-language
// keyword (already upper-cased by the tokenizer).
func ClauseFor(keyword string) (AxisClause, bool) {
	for _, ax := range axes {
		if ax.Clause != nil && ax.Clause.Keyword == keyword {
			return *ax.Clause, true
		}
	}
	return AxisClause{}, false
}

// Clauses returns every registered axis clause in canonical axis order —
// the order queries render their clauses in.
func Clauses() []AxisClause {
	out := make([]AxisClause, 0, len(axes))
	for _, ax := range axes {
		if ax.Clause != nil {
			out = append(out, *ax.Clause)
		}
	}
	return out
}

// View folds the setting's pixel-transforming axes into the canonical
// scene view the corpus is observed through (the zero View when only
// frame-choice axes are active).
func (s Setting) View() scene.View {
	var vw scene.View
	for _, ax := range axes {
		if ax.Fold != nil {
			ax.Fold(s, &vw)
		}
	}
	// Fold maps identity renderings (blur length 1) to their zero forms so
	// equal views compare equal.
	if vw.BlurLen == 1 {
		vw.BlurLen = 0
	}
	return vw
}

// ViewSpec renders the canonical specification of the setting's pixel
// view: the stable per-axis clauses of every active pixel axis, or "" for
// a direct observation. It is the view-cache key alongside the corpus.
func (s Setting) ViewSpec() string {
	var parts []string
	for _, ax := range axes {
		if ax.Fold == nil {
			continue
		}
		if clause := ax.Format(s); clause != "" {
			parts = append(parts, clause)
		}
	}
	return strings.Join(parts, " ")
}

// KeyFields returns the canonical persistence fields of the setting's
// non-sampling axes, in registry order. Legacy axes always emit so stored
// PR 8 keys are reproduced byte-for-byte; newer axes emit only when
// active.
func (s Setting) KeyFields() []KeyField {
	var fields []KeyField
	for _, ax := range axes {
		fields = append(fields, ax.Key(s)...)
	}
	return fields
}
