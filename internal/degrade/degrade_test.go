package degrade

import (
	"context"
	"strings"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/outputs"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func TestSettingValidate(t *testing.T) {
	m := detect.YOLOv4Sim()
	valid := []Setting{
		{SampleFraction: 0.5},
		{SampleFraction: 1, Resolution: 608},
		{SampleFraction: 0.01, Resolution: 32, Restricted: []scene.Class{scene.Person, scene.Face}},
	}
	for _, s := range valid {
		if err := s.Validate(m); err != nil {
			t.Fatalf("valid setting %v rejected: %v", s, err)
		}
	}
	invalid := []Setting{
		{SampleFraction: 0},
		{SampleFraction: 1.5},
		{SampleFraction: 0.5, Resolution: 100},
		{SampleFraction: 0.5, Resolution: 640}, // above YOLO native
		{SampleFraction: 0.5, Restricted: []scene.Class{scene.Person, scene.Person}},
	}
	for _, s := range invalid {
		if err := s.Validate(m); err == nil {
			t.Fatalf("invalid setting %v accepted", s)
		}
	}
}

func TestIsRandomOnly(t *testing.T) {
	m := detect.YOLOv4Sim()
	if !(Setting{SampleFraction: 0.1}).IsRandomOnly(m) {
		t.Fatal("pure sampling should be random-only")
	}
	if !(Setting{SampleFraction: 0.1, Resolution: 608}).IsRandomOnly(m) {
		t.Fatal("native resolution should still be random-only")
	}
	if (Setting{SampleFraction: 0.1, Resolution: 320}).IsRandomOnly(m) {
		t.Fatal("reduced resolution is non-random")
	}
	if (Setting{SampleFraction: 0.1, Restricted: []scene.Class{scene.Face}}).IsRandomOnly(m) {
		t.Fatal("image removal is non-random")
	}
}

func TestSettingString(t *testing.T) {
	s := Setting{SampleFraction: 0.25, Resolution: 128, Restricted: []scene.Class{scene.Person, scene.Face}}
	str := s.String()
	for _, want := range []string{"f=0.25", "p=128x128", "person+face"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
	if got := (Setting{SampleFraction: 1}).String(); !strings.Contains(got, "p=native") || !strings.Contains(got, "c=none") {
		t.Fatalf("loose setting string = %q", got)
	}
}

func TestApplySampling(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	stream := stats.NewStream(1)
	plan, err := Apply(v, m, Setting{SampleFraction: 0.1}, stream)
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(v.NumFrames())*0.1 + 0.5)
	if plan.SampleSize() != want {
		t.Fatalf("sample size %d, want %d", plan.SampleSize(), want)
	}
	if plan.Total != v.NumFrames() {
		t.Fatalf("plan.Total = %d", plan.Total)
	}
	if plan.Resolution != m.NativeInput {
		t.Fatalf("resolution %d, want native", plan.Resolution)
	}
	// Sampled indices are distinct, sorted, in range.
	prev := -1
	for _, idx := range plan.Sampled {
		if idx <= prev || idx >= v.NumFrames() {
			t.Fatalf("bad sampled index %d after %d", idx, prev)
		}
		prev = idx
	}
}

func TestApplySamplingUniform(t *testing.T) {
	// Every frame should be sampled with roughly equal frequency.
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	counts := make([]int, v.NumFrames())
	const trials = 400
	root := stats.NewStream(7)
	for trial := 0; trial < trials; trial++ {
		plan, err := Apply(v, m, Setting{SampleFraction: 0.2}, root.Child(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range plan.Sampled {
			counts[idx]++
		}
	}
	want := float64(trials) * 0.2
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if float64(lo) < want*0.5 || float64(hi) > want*1.5 {
		t.Fatalf("sampling not uniform: min %d max %d want ~%.0f", lo, hi, want)
	}
}

func TestApplyImageRemoval(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	// The small corpus is dense daytime traffic where most frames contain a
	// person, so restrict the rarer "face" class for the positive case.
	s := Setting{SampleFraction: 0.05, Restricted: []scene.Class{scene.Face}}
	plan, err := Apply(v, m, s, stats.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	present, err := outputs.Presence(context.Background(), v, scene.Face)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range plan.Admissible {
		if present[idx] {
			t.Fatalf("admissible frame %d contains a restricted object", idx)
		}
	}
	for _, idx := range plan.Sampled {
		if present[idx] {
			t.Fatalf("sampled frame %d contains a restricted object", idx)
		}
	}
	if len(plan.Admissible) >= v.NumFrames() {
		t.Fatal("image removal removed nothing")
	}
}

func TestApplyRejectsOversizedSample(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	// The small corpus is dense daytime traffic: most frames contain a
	// person, so sampling everything after removal must fail.
	s := Setting{SampleFraction: 1, Restricted: []scene.Class{scene.Person}}
	if _, err := Apply(v, m, s, stats.NewStream(3)); err == nil {
		t.Fatal("oversized sample accepted")
	}
}

func TestApplyInvalidSetting(t *testing.T) {
	v := dataset.MustLoad("small")
	if _, err := Apply(v, detect.YOLOv4Sim(), Setting{SampleFraction: 2}, stats.NewStream(1)); err == nil {
		t.Fatal("invalid setting accepted")
	}
}

func TestAdmissibleFramesNoRestriction(t *testing.T) {
	v := dataset.MustLoad("small")
	frames := AdmissibleFrames(v, nil)
	if len(frames) != v.NumFrames() {
		t.Fatalf("unrestricted admissible pool = %d", len(frames))
	}
	for i, f := range frames {
		if f != i {
			t.Fatalf("admissible[%d] = %d", i, f)
		}
	}
}

func TestAdmissibleFramesMultiClass(t *testing.T) {
	v := dataset.MustLoad("small")
	both := AdmissibleFrames(v, []scene.Class{scene.Person, scene.Face})
	personOnly := AdmissibleFrames(v, []scene.Class{scene.Person})
	if len(both) > len(personOnly) {
		t.Fatal("restricting more classes admitted more frames")
	}
}

func TestSampleOutputs(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	plan, err := Apply(v, m, Setting{SampleFraction: 0.1, Resolution: 160}, stats.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	outs := SampleOutputs(v, m, scene.Car, plan)
	if len(outs) != plan.SampleSize() {
		t.Fatalf("outputs length %d, want %d", len(outs), plan.SampleSize())
	}
	series, err := outputs.Full(context.Background(), v, m, scene.Car, 160)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range plan.Sampled {
		if outs[i] != series[idx] {
			t.Fatalf("output %d mismatch", i)
		}
	}
}

func TestNoiseInterventionValidation(t *testing.T) {
	m := detect.YOLOv4Sim()
	if err := (Setting{SampleFraction: 0.5, NoiseSigma: 0.1}).Validate(m); err != nil {
		t.Fatalf("valid noise setting rejected: %v", err)
	}
	if err := (Setting{SampleFraction: 0.5, NoiseSigma: -0.1}).Validate(m); err == nil {
		t.Fatal("negative noise accepted")
	}
	if err := (Setting{SampleFraction: 0.5, NoiseSigma: 0.9}).Validate(m); err == nil {
		t.Fatal("absurd noise accepted")
	}
	if (Setting{SampleFraction: 0.5, NoiseSigma: 0.1}).IsRandomOnly(m) {
		t.Fatal("noise addition is a non-random intervention")
	}
	if got := (Setting{SampleFraction: 0.5, NoiseSigma: 0.1}).String(); !strings.Contains(got, "noise=0.1") {
		t.Fatalf("String() = %q", got)
	}
}

func TestEffectiveVideoCachesAndDegrades(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	s := Setting{SampleFraction: 0.2, NoiseSigma: 0.25}
	nv := EffectiveVideo(v, s)
	if nv == v {
		t.Fatal("noised view is the original")
	}
	if EffectiveVideo(v, s) != nv {
		t.Fatal("noised view not cached")
	}
	if EffectiveVideo(v, Setting{SampleFraction: 0.2}) != v {
		t.Fatal("zero-noise setting should return the original")
	}
	// The noised view shares annotations but detects worse.
	if nv.NumFrames() != v.NumFrames() {
		t.Fatal("noised view lost frames")
	}
	var clean, noisy float64
	for i := 0; i < 200; i++ {
		clean += float64(detect.CountClass(m.DetectFrame(v, i, 320), scene.Car))
		noisy += float64(detect.CountClass(m.DetectFrame(nv, i, 320), scene.Car))
	}
	if noisy >= clean {
		t.Fatalf("heavy capture noise did not degrade detection: %v vs %v", noisy, clean)
	}
}

func TestSampleOutputsUsesNoisedView(t *testing.T) {
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	stream := stats.NewStream(21)
	plan, err := Apply(v, m, Setting{SampleFraction: 0.1, NoiseSigma: 0.25}, stream)
	if err != nil {
		t.Fatal(err)
	}
	noisy := SampleOutputs(v, m, scene.Car, plan)
	cleanPlan := *plan
	cleanPlan.Setting.NoiseSigma = 0
	clean := SampleOutputs(v, m, scene.Car, &cleanPlan)
	var sumNoisy, sumClean float64
	for i := range noisy {
		sumNoisy += noisy[i]
		sumClean += clean[i]
	}
	if sumNoisy >= sumClean {
		t.Fatalf("noised outputs (%v) not below clean outputs (%v)", sumNoisy, sumClean)
	}
}

func TestEvictVideoDropsNoisedViews(t *testing.T) {
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)

	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	s := Setting{SampleFraction: 0.2, NoiseSigma: 0.25}
	nv := EffectiveVideo(v, s)

	// Populate detect caches for both the original and the noised view.
	if _, err := outputs.At(context.Background(), v, m, scene.Car, 320, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := outputs.At(context.Background(), nv, m, scene.Car, 320, []int{0, 1}); err != nil {
		t.Fatal(err)
	}

	freed := EvictVideo(v)
	if freed == 0 {
		t.Fatal("eviction freed nothing")
	}
	if stats := detect.Stats(); stats.TotalBytes() != 0 {
		t.Fatalf("caches retained %d bytes after evicting the corpus and its noised views", stats.TotalBytes())
	}
	// The noised view itself must be forgotten: a new request builds a fresh one.
	if EffectiveVideo(v, s) == nv {
		t.Fatal("noised view survived eviction")
	}
}
