package degrade

import (
	"context"
	"math"
	"testing"

	"smokescreen/internal/dataset"
	"smokescreen/internal/detect"
	"smokescreen/internal/outputs"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
)

// pixelSettings covers every pixel axis and their composition; each
// produces a distinct interned view of the corpus.
var pixelSettings = []Setting{
	{SampleFraction: 0.1, NoiseSigma: 0.2},
	{SampleFraction: 0.1, MotionBlur: 7},
	{SampleFraction: 0.1, Quantize: 16},
	{SampleFraction: 0.1, Occlusion: 0.2},
	{SampleFraction: 0.1, NoiseSigma: 0.1, MotionBlur: 9, Quantize: 32, Occlusion: 0.1},
}

// TestEvictVideoFreesEveryView is the memory-bounding contract: after
// creating and exercising every kind of pixel-axis view of a corpus, one
// EvictVideo(corpus) drops the views from the intern table, their
// render/output caches, and their accounted bytes — nothing survives.
func TestEvictVideoFreesEveryView(t *testing.T) {
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)

	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	views := make([]*scene.Video, 0, len(pixelSettings))
	for _, s := range pixelSettings {
		ev := EffectiveVideo(v, s)
		if ev == v {
			t.Fatalf("setting %v produced no view", s)
		}
		views = append(views, ev)
		if _, err := outputs.At(context.Background(), ev, m, scene.Car, 320, []int{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	cs := detect.Stats()
	if cs.ViewVideos != len(pixelSettings) {
		t.Fatalf("ViewVideos = %d, want %d", cs.ViewVideos, len(pixelSettings))
	}
	if cs.ViewBytes <= 0 {
		t.Fatalf("ViewBytes = %d, want > 0 (views rendered backgrounds and masks)", cs.ViewBytes)
	}
	if cs.TotalBytes() < cs.ViewBytes {
		t.Fatal("TotalBytes does not include ViewBytes")
	}

	freed := EvictVideo(v)
	if freed <= 0 {
		t.Fatal("eviction freed nothing")
	}
	after := detect.Stats()
	if after.ViewVideos != 0 || after.ViewBytes != 0 {
		t.Fatalf("views survived eviction: %d videos, %d bytes", after.ViewVideos, after.ViewBytes)
	}
	if after.TotalBytes() != 0 {
		t.Fatalf("caches retained %d bytes after evicting the corpus", after.TotalBytes())
	}
	for i, s := range pixelSettings {
		if EffectiveVideo(v, s) == views[i] {
			t.Fatalf("view for %v survived eviction", s)
		}
	}
}

// TestEvictOtherVideoKeepsViews: eviction is per-corpus — views of a
// different corpus are untouched.
func TestEvictOtherVideoKeepsViews(t *testing.T) {
	detect.ResetCaches()
	t.Cleanup(detect.ResetCaches)

	small := dataset.MustLoad("small")
	other := dataset.MustLoad("night-street")
	s := Setting{SampleFraction: 0.1, MotionBlur: 7}
	ev := EffectiveVideo(small, s)
	if EvictVideo(other) < 0 {
		t.Fatal("negative freed bytes")
	}
	if EffectiveVideo(small, s) != ev {
		t.Fatal("evicting another corpus dropped this corpus's view")
	}
}

// TestDetectionDeterministicUnderViews pins the end-to-end determinism
// contract on the detection hot path through a pixel-transformed view:
// per-frame detections are identical across raster parallelism levels,
// both on the float path and under the quantized uint8 raster path.
func TestDetectionDeterministicUnderViews(t *testing.T) {
	prevPar := raster.Parallelism()
	prevQuant := detect.Quantized()
	t.Cleanup(func() {
		raster.SetParallelism(prevPar)
		detect.SetQuantized(prevQuant)
		detect.ResetCaches()
	})

	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	setting := Setting{SampleFraction: 0.1, MotionBlur: 9, Quantize: 32, Occlusion: 0.1}

	counts := func(workers int, quantized bool) []float64 {
		raster.SetParallelism(workers)
		detect.SetQuantized(quantized)
		detect.ResetCaches()
		ev := EffectiveVideo(v, setting)
		out := make([]float64, 0, 30)
		for i := 0; i < 30; i++ {
			out = append(out, float64(detect.CountClass(m.DetectFrame(ev, i, 320), scene.Car)))
		}
		return out
	}

	for _, quantized := range []bool{false, true} {
		base := counts(1, quantized)
		for _, workers := range []int{2, 4, 8} {
			got := counts(workers, quantized)
			for i := range base {
				if math.Float64bits(base[i]) != math.Float64bits(got[i]) {
					t.Fatalf("quantized=%v: frame %d count differs between 1 and %d workers: %v vs %v",
						quantized, i, workers, base[i], got[i])
				}
			}
		}
	}
}

// TestViewSpecCanonical: the cache key renders only active pixel axes in
// registry order, so equal views intern to one entry.
func TestViewSpecCanonical(t *testing.T) {
	s := Setting{NoiseSigma: 0.1, MotionBlur: 7, Quantize: 32, Occlusion: 0.25}
	if got, want := s.ViewSpec(), "noise=0.1 blur=7 quant=32 occl=0.25"; got != want {
		t.Errorf("ViewSpec = %q, want %q", got, want)
	}
	if got := (Setting{SampleFraction: 0.5, Resolution: 160}).ViewSpec(); got != "" {
		t.Errorf("frame-choice axes leaked into the view spec: %q", got)
	}
	// Identity blur renders nothing; the interned view is shared.
	a := Setting{SampleFraction: 0.1, NoiseSigma: 0.2}
	b := Setting{SampleFraction: 0.9, NoiseSigma: 0.2, MotionBlur: 1}
	v := dataset.MustLoad("small")
	t.Cleanup(detect.ResetCaches)
	if EffectiveVideo(v, a) != EffectiveVideo(v, b) {
		t.Error("settings with equal views interned separately")
	}
}
