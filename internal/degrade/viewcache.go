package degrade

import (
	"sync"

	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
)

// The view cache interns the derived videos EffectiveVideo creates, one
// per (corpus, canonical view spec), so repeated estimator trials under
// the same pixel-axis setting share a single detector-output cache: every
// detect-side cache keys on the *scene.Video pointer, and interning makes
// the pointer canonical for the view. The cache registers with
// detect.RegisterViewCache so ResetCaches drops it, EvictVideo(corpus)
// frees every view of that corpus (recursively evicting each view's own
// detector artifacts), and Stats byte-accounts the views' lazily
// materialized rasters.
var (
	viewMu    sync.Mutex
	viewCache = map[viewKey]*scene.Video{}
)

type viewKey struct {
	video *scene.Video
	spec  string
}

func init() {
	detect.RegisterViewCache(resetViews, evictViews, fillViewStats)
}

// EffectiveVideo returns the corpus as the setting's capture pipeline sees
// it: the original video when no pixel axis is active, otherwise the
// interned view observed through the setting's transforms (noise, motion
// blur, quantization, occlusion).
func EffectiveVideo(v *scene.Video, s Setting) *scene.Video {
	vw := s.View()
	if vw.IsZero() {
		return v
	}
	key := viewKey{video: v, spec: s.ViewSpec()}
	viewMu.Lock()
	defer viewMu.Unlock()
	if nv, ok := viewCache[key]; ok {
		return nv
	}
	nv := v.WithView(vw)
	viewCache[key] = nv
	return nv
}

// resetViews drops every cached view. The views' own detector artifacts
// are dropped by the same ResetCaches sweep, so no recursion is needed.
func resetViews() {
	viewMu.Lock()
	defer viewMu.Unlock()
	viewCache = map[viewKey]*scene.Video{}
}

// evictViews releases every cached view derived from v (all views when v
// is nil) and recursively evicts each view's own detector-derived caches;
// views carry no sub-views, so the recursion terminates after one level.
// Returns the accounted bytes freed, including the views' materialized
// rasters.
func evictViews(v *scene.Video) int64 {
	viewMu.Lock()
	var views []*scene.Video
	for key, nv := range viewCache {
		if v == nil || key.video == v {
			//smokevet:ignore determinism: eviction order only affects the order bytes are freed; the returned sum is order-independent and no profile bytes flow from it
			views = append(views, nv)
			delete(viewCache, key)
		}
	}
	viewMu.Unlock()
	var freed int64
	for _, nv := range views {
		freed += detect.PerEntryOverhead + nv.CachedRasterBytes()
		freed += detect.EvictVideo(nv)
	}
	return freed
}

// fillViewStats populates the view-cache fields of a CacheStats report.
func fillViewStats(s *detect.CacheStats) {
	viewMu.Lock()
	defer viewMu.Unlock()
	s.ViewVideos = len(viewCache)
	for _, nv := range viewCache {
		s.ViewBytes += detect.PerEntryOverhead + nv.CachedRasterBytes()
	}
}
