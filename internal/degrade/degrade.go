// Package degrade implements the paper's destructive interventions
// (Section 2.1) and their composition into intervention settings:
//
//   - reduced frame sampling (random): keep a random fraction f of frames,
//     sampled without replacement;
//   - reduced frame resolution (non-random): process frames at p x p;
//   - image removal (non-random): delete every frame containing a
//     restricted object class, using stored prior presence information
//     (paper Section 5.1);
//   - pixel-space capture interventions (all non-random): added sensor
//     noise, horizontal motion blur, intensity quantization (JPEG-style
//     compression), and lens scratch/dirt occlusion, applied to the corpus
//     as a render-time view (scene.View).
//
// A Setting extends the paper's (f, p, c) triple with the pixel axes; the
// axis registry in axes.go is the single source of truth for which axes
// exist and how each validates, renders, persists and orders. Apply
// materialises a setting against a corpus into a Plan: the admissible
// frame pool and the sampled frame indices a query processor may touch.
package degrade

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"smokescreen/internal/detect"
	"smokescreen/internal/outputs"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

// Setting is one point in the intervention space: the paper's (f, p, c).
type Setting struct {
	// SampleFraction is f: the fraction of the corpus that may be
	// processed, in (0, 1]. 1 means every admissible frame.
	SampleFraction float64
	// Resolution is p: the model input resolution. 0 means the model's
	// native (loosest) resolution.
	Resolution int
	// Restricted is c: frames containing any of these classes are removed
	// before sampling. Empty means no image removal.
	Restricted []scene.Class
	// NoiseSigma is the noise-addition intervention: extra sensor noise
	// (absolute intensity sigma at native resolution) injected at capture
	// to defeat recognition (paper Section 2.1 cites invisible-noise
	// privacy methods). Zero means none. Non-random: it biases detector
	// outputs, so bounds require profile repair.
	NoiseSigma float64
	// MotionBlur is the horizontal motion-blur streak length in native
	// pixels (a deliberately long exposure); 0 and 1 mean none. Non-random.
	MotionBlur int
	// Quantize is the number of uniform intensity levels frames are
	// quantized to (JPEG-style compression); 0 means none, otherwise at
	// least 2. Non-random.
	Quantize int
	// Occlusion is the lens scratch/dirt density in [0, 0.5]; 0 means
	// none. Non-random.
	Occlusion float64
}

// IsRandomOnly reports whether the setting consists solely of random
// interventions (reduced frame sampling). Non-random interventions — any
// active non-random axis in the registry: reduced resolution, image
// removal, or a pixel-space transform — change the distribution of model
// outputs and require profile repair (paper Section 3.2.5).
func (s Setting) IsRandomOnly(m *detect.Model) bool {
	for _, ax := range axes {
		if !ax.Random && ax.Active(s, m) {
			return false
		}
	}
	return true
}

// ResolveResolution returns the model input resolution this setting uses.
func (s Setting) ResolveResolution(m *detect.Model) int {
	if s.Resolution == 0 {
		return m.NativeInput
	}
	return s.Resolution
}

// Validate checks the setting against a model's input constraints by
// running every registered axis's validator.
func (s Setting) Validate(m *detect.Model) error {
	for _, ax := range axes {
		if err := ax.Validate(s, m); err != nil {
			return err
		}
	}
	return nil
}

// String renders the setting in the (f, p, c) notation of the paper,
// extended with one clause per active pixel axis; the rendering of legacy
// settings is unchanged.
func (s Setting) String() string {
	var b strings.Builder
	for _, ax := range axes {
		clause := ax.Format(s)
		if clause == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(clause)
	}
	return b.String()
}

// Plan is a Setting materialised against a corpus: which frames survive
// image removal, and which of those were sampled for processing.
type Plan struct {
	Setting    Setting
	Resolution int   // resolved model input resolution
	Admissible []int // frame indices not containing restricted classes
	Sampled    []int // the n sampled frame indices (subset of Admissible)
	Total      int   // N: corpus size before any intervention
}

// SampleSize returns n, the number of frames the plan processes.
func (p *Plan) SampleSize() int { return len(p.Sampled) }

// Apply materialises the setting: computes the admissible pool via the
// stored class-presence priors, then samples n = round(f*N) frames from it
// without replacement using the provided random stream. It returns an
// error when the requested sample exceeds the admissible pool — the
// situation the paper handles by lowering f (Section 5.2.2 uses f = 0.1
// for UA-DETRAC with restricted class "person").
func Apply(v *scene.Video, m *detect.Model, s Setting, stream *stats.Stream) (*Plan, error) {
	return ApplyCtx(context.Background(), v, m, s, stream)
}

// ApplyCtx is Apply with cancellation: computing the admissible pool runs
// the paper's presence protocol (a full-corpus detector scan per
// restricted class the first time), which a cancelled context aborts.
func ApplyCtx(ctx context.Context, v *scene.Video, m *detect.Model, s Setting, stream *stats.Stream) (*Plan, error) {
	if err := s.Validate(m); err != nil {
		return nil, err
	}
	n := v.NumFrames()
	admissible, err := AdmissibleFramesCtx(ctx, v, s.Restricted)
	if err != nil {
		return nil, err
	}
	want := int(float64(n)*s.SampleFraction + 0.5)
	if want < 1 {
		want = 1
	}
	if want > len(admissible) {
		return nil, fmt.Errorf("degrade: sample of %d frames exceeds admissible pool of %d (of %d total); lower the sample fraction",
			want, len(admissible), n)
	}
	idx := stream.SampleWithoutReplacement(len(admissible), want)
	sampled := make([]int, len(idx))
	for i, j := range idx {
		sampled[i] = admissible[j]
	}
	sort.Ints(sampled)
	return &Plan{
		Setting:    s,
		Resolution: s.ResolveResolution(m),
		Admissible: admissible,
		Sampled:    sampled,
		Total:      n,
	}, nil
}

// AdmissibleFrames returns the indices of frames that contain none of the
// restricted classes, per the stored prior presence information.
func AdmissibleFrames(v *scene.Video, restricted []scene.Class) []int {
	// Presence over a background context cannot fail (the only error an
	// output read produces is context cancellation).
	admissible, _ := AdmissibleFramesCtx(context.Background(), v, restricted)
	return admissible
}

// AdmissibleFramesCtx is AdmissibleFrames with cancellation; the only
// error it returns is the context's.
func AdmissibleFramesCtx(ctx context.Context, v *scene.Video, restricted []scene.Class) ([]int, error) {
	n := v.NumFrames()
	if len(restricted) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	blocked := make([]bool, n)
	for _, c := range restricted {
		present, err := outputs.Presence(ctx, v, c)
		if err != nil {
			return nil, err
		}
		for i, p := range present {
			if p {
				blocked[i] = true
			}
		}
	}
	var out []int
	for i := 0; i < n; i++ {
		if !blocked[i] {
			out = append(out, i)
		}
	}
	return out, nil
}

// SampleOutputs gathers the model outputs for the plan's sampled frames at
// the plan's resolution: the x_1..x_n series the estimators consume. Only
// the sampled frames are evaluated (lazily, through the column store), so
// the model cost of a degraded query is proportional to n, not N. When the
// plan's setting adds capture noise, detection runs on the noised view of
// the corpus.
func SampleOutputs(v *scene.Video, m *detect.Model, class scene.Class, p *Plan) []float64 {
	out, _ := SampleOutputsCtx(context.Background(), v, m, class, p)
	return out
}

// SampleOutputsCtx is SampleOutputs with cancellation; the only error it
// returns is the context's.
func SampleOutputsCtx(ctx context.Context, v *scene.Video, m *detect.Model, class scene.Class, p *Plan) ([]float64, error) {
	return outputs.At(ctx, EffectiveVideo(v, p.Setting), m, class, p.Resolution, p.Sampled)
}

// EvictVideo drops every detect-side cached artifact derived from the
// corpus — detector-output tables, render-cache frames, bounded
// delta-detection accounts, and every cached view EffectiveVideo created
// for its pixel-axis settings (see viewcache.go; detect.EvictVideo reaches
// them through the registered view-cache hook). Returns the accounted
// bytes freed. This is the per-corpus memory-bounding hook fleet
// deployments should call when a camera rotates out.
func EvictVideo(v *scene.Video) int64 {
	return detect.EvictVideo(v)
}
