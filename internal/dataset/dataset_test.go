package dataset

import (
	"math"
	"testing"

	"smokescreen/internal/scene"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"highway", "mvi-40771", "mvi-40775", "night-street", "small", "ua-detrac"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("Load of unknown dataset succeeded")
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe of unknown dataset succeeded")
	}
}

func TestLoadCaches(t *testing.T) {
	a := MustLoad("small")
	b := MustLoad("small")
	if a != b {
		t.Fatal("Load did not cache")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad of unknown dataset did not panic")
		}
	}()
	MustLoad("nope")
}

func TestFrameCountsMatchPaper(t *testing.T) {
	for _, name := range []string{"night-street", "ua-detrac", "mvi-40771", "mvi-40775"} {
		info, err := Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		v := MustLoad(name)
		if v.NumFrames() != info.PaperFrames {
			t.Fatalf("%s: %d frames, paper has %d", name, v.NumFrames(), info.PaperFrames)
		}
	}
}

func TestNightStreetCalibration(t *testing.T) {
	v := MustLoad("night-street")
	info, _ := Describe("night-street")
	pf := v.ClassFrameFraction(scene.Person)
	ff := v.ClassFrameFraction(scene.Face)
	if math.Abs(pf-info.PaperPersonFraction) > 0.05 {
		t.Fatalf("person fraction = %.4f, paper reports %.4f", pf, info.PaperPersonFraction)
	}
	if math.Abs(ff-info.PaperFaceFraction) > 0.03 {
		t.Fatalf("face fraction = %.4f, paper reports %.4f", ff, info.PaperFaceFraction)
	}
	mc := v.MeanCount(scene.Car)
	if mc < 0.5 || mc > 2.5 {
		t.Fatalf("mean cars per frame = %v, want sparse night traffic", mc)
	}
}

func TestUADetracCalibration(t *testing.T) {
	v := MustLoad("ua-detrac")
	info, _ := Describe("ua-detrac")
	pf := v.ClassFrameFraction(scene.Person)
	ff := v.ClassFrameFraction(scene.Face)
	// Scene-level fractions sit near (slightly below) the paper's
	// detector-measured numbers; the detector-level match is asserted in
	// the experiments package where outputs are cached.
	if math.Abs(pf-info.PaperPersonFraction) > 0.12 {
		t.Fatalf("person fraction = %.4f, paper reports %.4f", pf, info.PaperPersonFraction)
	}
	if math.Abs(ff-info.PaperFaceFraction) > 0.02 {
		t.Fatalf("face fraction = %.4f, paper reports %.4f", ff, info.PaperFaceFraction)
	}
	mc := v.MeanCount(scene.Car)
	if mc < 3 || mc > 12 {
		t.Fatalf("mean cars per frame = %v, want dense traffic", mc)
	}
}

func TestCorporaDiffer(t *testing.T) {
	ns := MustLoad("night-street")
	uad := MustLoad("ua-detrac")
	if uad.MeanCount(scene.Car) <= ns.MeanCount(scene.Car)*2 {
		t.Fatalf("UA-DETRAC (%v cars/frame) should be much denser than night-street (%v)",
			uad.MeanCount(scene.Car), ns.MeanCount(scene.Car))
	}
}

func TestAutocorrelationContrast(t *testing.T) {
	// UA-DETRAC is contiguous (long lifetimes); night-street was selected
	// 1-in-50 (short effective lifetimes). The lag-1 autocorrelation of the
	// car-count series must reflect that.
	autocorr := func(v *scene.Video) float64 {
		n := v.NumFrames()
		xs := make([]float64, n)
		var mean float64
		for i := 0; i < n; i++ {
			xs[i] = float64(v.Frame(i).Count(scene.Car))
			mean += xs[i]
		}
		mean /= float64(n)
		var num, den float64
		for i := 0; i < n-1; i++ {
			num += (xs[i] - mean) * (xs[i+1] - mean)
		}
		for _, x := range xs {
			den += (x - mean) * (x - mean)
		}
		return num / den
	}
	ns := autocorr(MustLoad("night-street"))
	uad := autocorr(MustLoad("ua-detrac"))
	if uad < 0.9 {
		t.Fatalf("UA-DETRAC autocorrelation = %v, want very high", uad)
	}
	if ns > uad-0.1 {
		t.Fatalf("night-street autocorrelation (%v) should be well below UA-DETRAC (%v)", ns, uad)
	}
}

func TestSimilarVideosShareGeometry(t *testing.T) {
	a := MVI40771Config()
	b := MVI40775Config()
	if a.Lighting != b.Lighting {
		t.Fatal("similar videos must share lighting")
	}
	if a.CarRate != b.CarRate || a.CarContrast != b.CarContrast {
		t.Fatal("similar videos must share traffic parameters")
	}
	if a.Seed == b.Seed {
		t.Fatal("similar videos must be different realisations")
	}
	if a.NumFrames != 1720 || b.NumFrames != 975 {
		t.Fatalf("frame counts %d/%d, paper has 1720/975", a.NumFrames, b.NumFrames)
	}
}

func TestHighwayDistinctCharacter(t *testing.T) {
	hw := MustLoad("highway")
	if hw.NumFrames() != 8000 {
		t.Fatalf("highway frames %d", hw.NumFrames())
	}
	mc := hw.MeanCount(scene.Car)
	if mc < 1.5 || mc > 5 {
		t.Fatalf("highway mean cars %v, want moderate", mc)
	}
	// Pedestrians are nearly absent — the opposite of UA-DETRAC.
	if pf := hw.ClassFrameFraction(scene.Person); pf > 0.1 {
		t.Fatalf("highway person fraction %v too high", pf)
	}
	// Faster traffic means weaker autocorrelation than UA-DETRAC despite
	// contiguous footage.
	autocorr := func(v *scene.Video) float64 {
		n := v.NumFrames()
		var mean float64
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(v.Frame(i).Count(scene.Car))
			mean += xs[i]
		}
		mean /= float64(n)
		var num, den float64
		for i := 0; i < n-1; i++ {
			num += (xs[i] - mean) * (xs[i+1] - mean)
		}
		for _, x := range xs {
			den += (x - mean) * (x - mean)
		}
		return num / den
	}
	if a, b := autocorr(hw), autocorr(MustLoad("ua-detrac")); a >= b {
		t.Fatalf("highway autocorrelation %v not below UA-DETRAC %v", a, b)
	}
}

func TestPersonRateInversion(t *testing.T) {
	// personRate must invert the regime-adjusted occupancy equation.
	for _, c := range []struct {
		target   float64
		lifetime int
		busy     float64
	}{{0.1418, 12, 1.5}, {0.6586, 300, 1.7}, {0.0248, 300, 1.7}, {0.5, 100, 1.0}} {
		r := personRate(c.target, c.lifetime, c.busy)
		l := float64(c.lifetime)
		back := (1-math.Exp(-r*c.busy*l))/2 + (1-math.Exp(-r*(2-c.busy)*l))/2
		if math.Abs(back-c.target) > 1e-9 {
			t.Fatalf("personRate inversion failed: %v -> %v", c.target, back)
		}
	}
}
