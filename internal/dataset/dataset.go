// Package dataset defines the synthetic corpora that stand in for the
// paper's video datasets. Each constructor returns a scene.Video whose
// corpus-level statistics are calibrated to the numbers the paper reports
// in Section 5.1:
//
//   - night-street (BlazeIt): 19 463 frames (1-in-50 selection of a 973k
//     frame 30 FPS stream), sparse night traffic, 14.18% of frames contain
//     a person and 4.02% contain a face.
//   - UA-DETRAC: 15 210 frames from 12 contiguous sequences, dense daytime
//     traffic at urban intersections, 65.86% person frames, 2.48% face
//     frames.
//
// Because night-street frames were selected 1-in-50, consecutive *selected*
// frames are 1.67 seconds apart and a car crossing survives only a few of
// them; UA-DETRAC sequences are contiguous, so their per-frame outputs are
// strongly autocorrelated. The configurations below encode exactly that
// difference, which is what makes the two corpora respond differently to
// frame sampling — the effect Figure 3 of the paper illustrates.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"smokescreen/internal/scene"
)

// Info documents a corpus and the paper statistics it is calibrated to.
type Info struct {
	Name        string
	Description string
	// Paper-reported calibration targets.
	PaperFrames         int
	PaperPersonFraction float64
	PaperFaceFraction   float64
}

// personRate solves the regime-adjusted M/G/infinity occupancy equation for
// the arrival rate that yields the target fraction of frames containing
// >= 1 object with the given mean lifetime. The scene alternates between a
// busy regime (rate x busyFactor) and a quiet regime (rate x (2-busyFactor))
// with equal stationary weight, so the occupancy is the average of the two
// regimes' 1 - exp(-rate*lifetime) terms; plain inversion of the unmixed
// equation undershoots by Jensen's inequality. Solved by bisection.
func personRate(targetFraction float64, lifetime int, busyFactor float64) float64 {
	occupancy := func(rate float64) float64 {
		l := float64(lifetime)
		busy := 1 - math.Exp(-rate*busyFactor*l)
		quiet := 1 - math.Exp(-rate*(2-busyFactor)*l)
		return (busy + quiet) / 2
	}
	lo, hi := 0.0, 1.0
	for occupancy(hi) < targetFraction {
		hi *= 2
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < targetFraction {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// NightStreetConfig returns the generator configuration for the
// night-street corpus. Exposed so tests and ablations can perturb it.
func NightStreetConfig() scene.Config {
	const (
		frames         = 19463
		personLifetime = 12 // ~20s pedestrian visibility / 50-frame stride
		personTarget   = 0.1418
		faceTarget     = 0.0402
	)
	pr := personRate(personTarget, personLifetime, 1.5)
	fr := personRate(faceTarget, personLifetime, 1.5)
	return scene.Config{
		Name:      "night-street",
		Width:     640,
		Height:    640,
		NumFrames: frames,
		Seed:      0x515d_0001,
		Lighting: scene.Lighting{
			// Night: dark, compressed luminance range, strong sensor noise.
			BackgroundTop:    0.10,
			BackgroundBottom: 0.22,
			TextureAmp:       0.015,
			NoiseSigma:       0.045,
		},
		CarRate:     0.30, // x lifetime 4 => mean ~1.2 cars per frame
		CarLifetime: 4,    // a ~5s crossing survives few 1-in-50 frames
		CarMinW:     70,
		CarMaxW:     150,
		CarContrast: 0.16, // low-beam night contrast

		PersonRate:     pr,
		PersonLifetime: personLifetime,
		PersonContrast: 0.12,
		FaceProb:       fr / pr,

		BusyFactor:   1.5,
		RegimeLength: 120,
		LaneYs:       []int{300, 380},
		SidewalkYs:   []int{180, 500},
	}
}

// UADetracConfig returns the generator configuration for the UA-DETRAC
// corpus: contiguous daytime sequences at a busy intersection.
func UADetracConfig() scene.Config {
	const (
		frames         = 15210
		personLifetime = 300 // contiguous 25 FPS: a pedestrian spans ~12s
		// Scene-level targets are set slightly off the paper's numbers so
		// that the *detector-measured* fractions (what the paper reports:
		// YOLOv4 person at 0.7, MTCNN face at 0.8) land on 65.86% / 2.48%:
		// the detector adds a few person-frames (entering-vehicle slivers)
		// and track-life jitter plus frame clipping shave ~1/3 of the
		// nominal face-frame occupancy.
		personTarget = 0.723
		faceTarget   = 0.0433
		faceDuration = 50 // a face is camera-visible only briefly
	)
	pr := personRate(personTarget, personLifetime, 1.7)
	// Expected face frames = (#face persons) x faceDuration; #persons =
	// pr x frames, so the per-person face probability follows directly.
	// Error-diffusion assignment in the generator makes the count exact.
	faceProb := faceTarget / (float64(faceDuration) * pr)
	return scene.Config{
		Name:      "ua-detrac",
		Width:     640,
		Height:    640,
		NumFrames: frames,
		Seed:      0x515d_0002,
		Lighting: scene.Lighting{
			// Daylight: bright, wide luminance range, mild noise.
			BackgroundTop:    0.55,
			BackgroundBottom: 0.75,
			TextureAmp:       0.03,
			NoiseSigma:       0.015,
		},
		CarRate:     0.035, // x lifetime 200 => mean ~7 cars per frame
		CarLifetime: 200,   // congested intersection: cars linger
		CarMinW:     50,
		CarMaxW:     120,
		CarContrast: 0.30,

		PersonRate:     pr,
		PersonLifetime: personLifetime,
		PersonContrast: 0.22,
		FaceProb:       faceProb,
		FaceDuration:   faceDuration,

		BusyFactor:   1.7,
		RegimeLength: 900,
		LaneYs:       []int{260, 330, 400, 470},
		SidewalkYs:   []int{140, 560},
	}
}

// MVI40771Config returns video A of the profile-similarity experiment
// (Section 5.3.2): 1720 frames from a busy-intersection camera.
func MVI40771Config() scene.Config {
	cfg := UADetracConfig()
	cfg.Name = "mvi-40771"
	cfg.NumFrames = 1720
	cfg.Seed = 0x515d_0003
	return cfg
}

// MVI40775Config returns video B: the same camera at a different time —
// identical scene geometry and lighting, different traffic realisation.
func MVI40775Config() scene.Config {
	cfg := UADetracConfig()
	cfg.Name = "mvi-40775"
	cfg.NumFrames = 975
	cfg.Seed = 0x515d_0004
	return cfg
}

// SmallConfig returns a fast, low-frame-count corpus for tests, examples
// and the quickstart. It shares the UA-DETRAC look at a fraction of the
// cost.
func SmallConfig() scene.Config {
	cfg := UADetracConfig()
	cfg.Name = "small"
	cfg.NumFrames = 1200
	cfg.Seed = 0x515d_0005
	cfg.Width = 320
	cfg.Height = 320
	cfg.CarMinW = 30
	cfg.CarMaxW = 70
	cfg.LaneYs = []int{130, 180, 230}
	cfg.SidewalkYs = []int{70, 280}
	// With only ~1200 frames the corpus sees a handful of persons; raise
	// the face share so face-restricted interventions stay testable.
	cfg.FaceProb = 0.5
	cfg.FaceDuration = 40
	return cfg
}

// HighwayConfig returns a third scenario beyond the paper's two: a
// six-lane highway at dusk — fast, sparse traffic, long sight lines, few
// pedestrians. It exercises geometry the intersection corpora do not
// (high speeds mean short lifetimes even in contiguous footage), and
// gives examples and tests a corpus whose profiles differ visibly from
// both paper datasets.
func HighwayConfig() scene.Config {
	return scene.Config{
		Name:      "highway",
		Width:     640,
		Height:    640,
		NumFrames: 8000,
		Seed:      0x515d_0006,
		Lighting: scene.Lighting{
			// Dusk: mid luminance, moderate noise.
			BackgroundTop:    0.30,
			BackgroundBottom: 0.45,
			TextureAmp:       0.02,
			NoiseSigma:       0.03,
		},
		CarRate:     0.12, // x lifetime 25 => mean ~3 cars per frame
		CarLifetime: 25,   // highway speeds: quick crossings
		CarMinW:     60,
		CarMaxW:     130,
		CarContrast: 0.22,

		PersonRate:     0.0005, // breakdowns and maintenance only
		PersonLifetime: 40,
		PersonContrast: 0.18,
		FaceProb:       0.1,

		BusyFactor:   1.8, // rush-hour pulses
		RegimeLength: 400,
		LaneYs:       []int{220, 280, 340, 400, 460, 520},
		SidewalkYs:   []int{120},
	}
}

var registry = map[string]struct {
	cfg  func() scene.Config
	info Info
}{
	"night-street": {
		cfg: NightStreetConfig,
		info: Info{
			Name:                "night-street",
			Description:         "Sparse night traffic (BlazeIt night-street stand-in), 1-in-50 frame selection",
			PaperFrames:         19463,
			PaperPersonFraction: 0.1418,
			PaperFaceFraction:   0.0402,
		},
	},
	"ua-detrac": {
		cfg: UADetracConfig,
		info: Info{
			Name:                "ua-detrac",
			Description:         "Dense daytime intersection traffic (UA-DETRAC stand-in), contiguous sequences",
			PaperFrames:         15210,
			PaperPersonFraction: 0.6586,
			PaperFaceFraction:   0.0248,
		},
	},
	"mvi-40771": {
		cfg:  MVI40771Config,
		info: Info{Name: "mvi-40771", Description: "Video A of the profile-similarity pair", PaperFrames: 1720},
	},
	"mvi-40775": {
		cfg:  MVI40775Config,
		info: Info{Name: "mvi-40775", Description: "Video B: same camera, different time", PaperFrames: 975},
	},
	"small": {
		cfg:  SmallConfig,
		info: Info{Name: "small", Description: "Fast corpus for tests and examples", PaperFrames: 1200},
	},
	"highway": {
		cfg:  HighwayConfig,
		info: Info{Name: "highway", Description: "Six-lane highway at dusk (this reproduction's extra scenario)", PaperFrames: 8000},
	},
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*scene.Video{}
)

// Load generates (or returns the cached) corpus with the given name.
// Corpora are deterministic, so caching is safe; experiments that need
// tens of estimator trials over the same corpus share one generation.
func Load(name string) (*scene.Video, error) {
	entry, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if v, ok := cache[name]; ok {
		return v, nil
	}
	v, err := scene.Generate(entry.cfg())
	if err != nil {
		return nil, fmt.Errorf("dataset: generating %q: %w", name, err)
	}
	cache[name] = v
	return v, nil
}

// MustLoad is Load for callers with static dataset names; it panics on
// error.
func MustLoad(name string) *scene.Video {
	v, err := Load(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Describe returns the Info for a dataset name.
func Describe(name string) (Info, error) {
	entry, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("dataset: unknown dataset %q", name)
	}
	return entry.info, nil
}

// Names lists the registered dataset names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
