package smokescreen_test

// Cross-module integration tests: each test exercises a realistic flow
// spanning several internal packages through their real interfaces —
// no mocks, the same code paths the examples and CLIs use.

import (
	"bytes"
	"math"
	"net"
	"testing"

	"smokescreen"
	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/fleet"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

// TestIntegrationProfileArchiveRoundTrip drives the full administration
// procedure with an archival hop in the middle: generate profiles, save
// the hypercube, load it back, choose a tradeoff from the loaded copy,
// and execute the query under the chosen setting.
func TestIntegrationProfileArchiveRoundTrip(t *testing.T) {
	sys := smokescreen.New(
		smokescreen.WithSeed(99),
		smokescreen.WithFractionCandidates(0.04, 0.2),
		smokescreen.WithCorrectionLimit(0.1),
	)
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small")
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := sys.GenerateProfiles(q)
	if err != nil {
		t.Fatal(err)
	}

	var archive bytes.Buffer
	if err := profile.SaveHypercube(&archive, profiles.Cube); err != nil {
		t.Fatal(err)
	}
	loaded, err := profile.LoadHypercube(&archive)
	if err != nil {
		t.Fatal(err)
	}
	setting, ok := loaded.ChooseTradeoff(0.4)
	if !ok {
		t.Fatal("no tradeoff within 0.4 on the loaded hypercube")
	}

	res, err := sys.ExecuteSetting(q, setting)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sys.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if trueErr := math.Abs(res.Estimate.Value-truth) / truth; trueErr > res.Estimate.ErrBound {
		t.Fatalf("bound %v below true error %v after the archive hop", res.Estimate.ErrBound, trueErr)
	}
}

// TestIntegrationCameraToStreamingEstimate runs the deployment topology
// end to end: a camera degrades and transmits frames over a wire, the
// central processor detects on received pixels and folds counts into a
// streaming estimator, and the final any-time bound covers the truth.
func TestIntegrationCameraToStreamingEstimate(t *testing.T) {
	v := dataset.MustLoad("small")
	model := detect.YOLOv4Sim()
	node := &camera.Node{
		Video:   v,
		Model:   model,
		Setting: degrade.Setting{SampleFraction: 0.3},
		Energy:  camera.DefaultEnergyModel(),
	}

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := node.Stream(transport.New(client), stats.NewStream(17))
		errCh <- err
	}()

	params := estimate.DefaultParams()
	var estimator *estimate.StreamingEstimator
	var last estimate.Estimate
	_, err := camera.Receive(transport.New(server), func(s *camera.Session, fr camera.ReceivedFrame) error {
		if estimator == nil {
			var err error
			estimator, err = estimate.NewStreamingEstimator(estimate.AVG, s.Config.TotalFrames, params, true)
			if err != nil {
				return err
			}
		}
		cars := detect.CountClass(s.Detect(model, fr), scene.Car)
		last = estimator.Observe(float64(cars))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Truth for the wire pipeline: full-frame detection at the same
	// transmitted resolution over the whole corpus.
	var sum float64
	for i := 0; i < v.NumFrames(); i++ {
		sum += float64(detect.CountClass(model.DetectFrameFull(v, i, model.NativeInput), scene.Car))
	}
	truth := sum / float64(v.NumFrames())
	if truth <= 0 {
		t.Fatal("degenerate truth")
	}
	if trueErr := math.Abs(last.Value-truth) / truth; trueErr > last.ErrBound {
		t.Fatalf("streaming bound %v below true error %v", last.ErrBound, trueErr)
	}
	if last.Sample != int(float64(v.NumFrames())*0.3+0.5) {
		t.Fatalf("streamed %d frames", last.Sample)
	}
}

// TestIntegrationFleetOverArchivedCorrections assembles a fleet whose
// non-random camera uses a correction set built through the profile
// machinery, and checks the combined answer against the exact fleet truth.
func TestIntegrationFleetOverArchivedCorrections(t *testing.T) {
	m := detect.YOLOv4Sim()
	vA := dataset.MustLoad("small")
	vB := dataset.MustLoad("highway")
	params := estimate.DefaultParams()

	specA := &profile.Spec{Video: vA, Model: m, Class: scene.Car, Agg: estimate.AVG, Params: params}
	construction, err := profile.ConstructCorrection(specA, 0.1, stats.NewStream(23))
	if err != nil {
		t.Fatal(err)
	}
	city, err := fleet.New(
		fleet.Camera{Name: "downtown", Video: vA, Model: m,
			Setting: degrade.Setting{SampleFraction: 0.3, Resolution: 160}, Correction: construction.Correction},
		fleet.Camera{Name: "bypass", Video: vB, Model: m,
			Setting: degrade.Setting{SampleFraction: 0.1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := city.Query(estimate.AVG, scene.Car, nil, params, stats.NewStream(29))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := city.TrueAnswer(estimate.AVG, scene.Car, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	if trueErr := math.Abs(res.Estimate.Value-truth) / truth; trueErr > res.Estimate.ErrBound {
		t.Fatalf("fleet bound %v below true error %v", res.Estimate.ErrBound, trueErr)
	}
}
