package smokescreen_test

// BenchmarkFleetServe* is the profile service's throughput baseline: each
// op runs one load scenario against a REAL 3-node in-process fleet
// (loopback listeners, pooled keep-alive forwarding, per-node stores)
// and reports requests/s, client-observed p50/p99, and the forwarded vs
// local split. The synthetic generator's invocation counters prove the
// dedup invariant inside the measurement itself: a hot-key herd op that
// costs more than one generation fleet-wide FAILS the bench rather than
// publishing a number that hides duplicated work. cmd/benchjson renders
// these into BENCH_PR8.json next to the figure benches.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"smokescreen/internal/fleetd"
	"smokescreen/internal/server"
)

func startBenchFleet(b *testing.B, genDelay time.Duration) *fleetd.Harness {
	b.Helper()
	h, err := fleetd.StartHarness(fleetd.HarnessConfig{
		Nodes:        3,
		LeaseTTL:     250 * time.Millisecond,
		ClaimPoll:    5 * time.Millisecond,
		GenDelay:     genDelay,
		PayloadBytes: 4096,
		Dir:          b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(h.Close)
	return h
}

// fleetTally accumulates scenario results across b.N ops and reports the
// family's shared metric set.
type fleetTally struct {
	requests, errors       int64
	forwards, local        int64
	coalesced              int64
	generations            int
	p50Sum, p99Sum, durSum float64
}

func (t *fleetTally) add(res fleetd.LoadResult) {
	t.requests += res.Requests
	t.errors += res.Errors
	t.forwards += res.Forwards
	t.local += res.LocalRequests
	t.coalesced += res.Coalesced
	t.generations += res.Generations
	t.p50Sum += res.P50Millis
	t.p99Sum += res.P99Millis
	t.durSum += res.DurationMillis
}

func (t *fleetTally) report(b *testing.B) {
	b.Helper()
	if t.errors > 0 {
		b.Fatalf("%d/%d requests failed", t.errors, t.requests)
	}
	n := float64(b.N)
	if t.durSum > 0 {
		b.ReportMetric(float64(t.requests)/(t.durSum/1000), "req/s")
	}
	b.ReportMetric(t.p50Sum/n, "p50-ms")
	b.ReportMetric(t.p99Sum/n, "p99-ms")
	b.ReportMetric(float64(t.generations)/n, "generations/op")
	b.ReportMetric(float64(t.forwards)/n, "forwards/op")
	b.ReportMetric(float64(t.local)/n, "local-requests/op")
	if routed := t.forwards + t.local; routed > 0 {
		b.ReportMetric(float64(t.forwards)/float64(routed), "forwarded-ratio")
	}
}

// BenchmarkFleetServeHotKey: 48 concurrent cold POSTs of ONE key per op,
// spread across all three nodes. The entire herd must collapse to exactly
// one generation fleet-wide (routing singleflight + lease + jobSet); the
// op fails otherwise.
func BenchmarkFleetServeHotKey(b *testing.B) {
	h := startBenchFleet(b, 5*time.Millisecond)
	ctx := context.Background()
	tally := &fleetTally{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := h.RunHotKeyHerd(ctx, 48, fmt.Sprintf("bench-herd-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Generations != 1 {
			b.Fatalf("herd op %d: %d generations fleet-wide, want exactly 1", i, res.Generations)
		}
		tally.add(res)
	}
	b.StopTimer()
	tally.report(b)
}

// BenchmarkFleetServeMixed: steady-state service shape — a 12-key
// population generated once per op, then 8 clients issuing 1 POST per 8
// GETs against rotating entry nodes. Exactly one generation per key; the
// forwarded ratio reflects ring placement (an entry node serves locally
// only when it replicates the key).
func BenchmarkFleetServeMixed(b *testing.B) {
	h := startBenchFleet(b, time.Millisecond)
	ctx := context.Background()
	const keys = 12
	tally := &fleetTally{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := h.RunSteady(ctx, 8, keys, 32, fmt.Sprintf("bench-mix-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Generations != keys {
			b.Fatalf("mixed op %d: %d generations for %d keys, want one each", i, res.Generations, keys)
		}
		tally.add(res)
	}
	b.StopTimer()
	tally.report(b)
}

// BenchmarkFleetServeLocalHit: pure warm GETs against the key's primary
// replica — the fleet's fast path. No forwarding, no generation; this is
// the per-request overhead the fleet layer adds over a bare smokescreend.
func BenchmarkFleetServeLocalHit(b *testing.B) {
	h := startBenchFleet(b, 0)
	ctx := context.Background()
	query := "bench-local-hit"
	key := fleetd.SyntheticKey(query)
	owner := h.Ring().Owner(key)
	ownerURL := h.URLFor(owner)
	if ownerURL == "" {
		b.Fatalf("owner %s not live", owner)
	}
	if status, _, err := h.Post(ctx, ownerURL, server.GenRequest{Query: query}); err != nil || status != 200 {
		b.Fatalf("warm POST: %d %v", status, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, body, err := h.Get(ctx, ownerURL, key)
		if err != nil || status != 200 || len(body) == 0 {
			b.Fatalf("GET: %d %v", status, err)
		}
	}
}
