// Profileservice: the profile daemon's request coalescing in action. An
// in-process smokescreend service is stood up on an ephemeral port; two
// clients then concurrently request the SAME profile. The singleflight
// job queue attaches the second request to the first's generation job, so
// the expensive sweep runs exactly once and both clients receive
// byte-identical profile JSON — the log lines prove it.
//
//	go run ./examples/profileservice
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"smokescreen/internal/server"
	"smokescreen/internal/store"
)

func main() {
	storeDir, err := os.MkdirTemp("", "profileservice-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	st, err := store.Open(storeDir)
	if err != nil {
		log.Fatal(err)
	}

	svc, err := server.New(server.Config{
		Store:     st,
		Generator: &server.SystemGenerator{Parallelism: 0}, // one worker per CPU
		Workers:   2,
		Logf: func(format string, args ...any) {
			fmt.Printf("  daemon: "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	fmt.Println("profile service listening on", ts.URL)

	// Two clients, one artifact: the same query, sweep, and seed resolve
	// to the same canonical key.
	req := server.GenRequest{
		Query:       "SELECT AVG(count(car)) FROM small",
		Seed:        42,
		Step:        0.02,
		MaxFraction: 0.1,
	}
	client := &server.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	payloads := make([][]byte, 2)
	keys := make([]string, 2)
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			payload, key, err := client.GenerateRaw(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			payloads[i], keys[i] = payload, key
			fmt.Printf("  client %d: %d bytes for key %s… in %s\n",
				i+1, len(payload), key[:12], time.Since(start).Round(time.Millisecond))
		}(i)
	}
	wg.Wait()

	fmt.Println()
	fmt.Println("keys equal:          ", keys[0] == keys[1])
	fmt.Println("payloads identical:  ", bytes.Equal(payloads[0], payloads[1]))

	// The daemon's own metrics prove a single generation served both.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "smokescreend_generations_total") ||
			strings.HasPrefix(line, "smokescreend_requests_coalesced_total") ||
			strings.HasPrefix(line, "smokescreend_profiles_served_total") {
			fmt.Println("metric:", line)
		}
	}

	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon drained cleanly")
}
