// Adaptivequery demonstrates adaptive execution: instead of fixing a
// sample fraction up front, the system samples (and detects) frames one
// batch at a time until the any-time error bound reaches the target —
// touching as little video as the data allows. This is the stopping-rule
// usage the empirical Bernstein stopping literature (the paper's EBGS
// baseline) was built for, made sound under adaptive stopping by the
// any-time Hoeffding–Serfling schedule.
//
//	go run ./examples/adaptivequery
package main

import (
	"fmt"
	"log"
	"math"

	"smokescreen"
)

func main() {
	sys := smokescreen.New(smokescreen.WithSeed(13))
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", q)
	fmt.Println()
	fmt.Println("target err   frames touched   answer    bound     met")
	for _, target := range []float64{0.6, 0.45, 0.3, 0.2} {
		res, err := sys.ExecuteUntil(q, target, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f   %6d (%4.1f%%)   %.4f   %.4f   %v\n",
			target, res.FramesUsed,
			100*float64(res.FramesUsed)/float64(res.Estimate.N),
			res.Estimate.Value, res.Estimate.ErrBound, res.Met)
	}

	// Verify the tightest run against the exact answer (demo only).
	res, err := sys.ExecuteUntil(q, 0.2, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := sys.GroundTruth(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact answer %.4f; the 0.20-target run's actual error was %.4f\n",
		truth, math.Abs(res.Estimate.Value-truth)/truth)
	fmt.Println("every reported bound held simultaneously (any-time guarantee),")
	fmt.Println("so stopping the moment the target was met did not invalidate it.")
}
