// Cityfleet demonstrates multi-camera deployments: two intersection
// cameras (the UA-DETRAC sequence pair) run under *different* intervention
// settings — one may only be touched at reduced resolution, the other only
// allows sparse sampling — and the central processor answers a city-wide
// average-cars query with a single combined error bound (stratified over
// the fleet with a union-bound risk split).
//
//	go run ./examples/cityfleet
package main

import (
	"fmt"
	"log"
	"math"

	"smokescreen"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/estimate"
	"smokescreen/internal/fleet"
	"smokescreen/internal/profile"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
)

func main() {
	model := smokescreen.YOLOv4Sim()
	camA := dataset.MustLoad("mvi-40771")
	camB := dataset.MustLoad("mvi-40775")
	params := smokescreen.DefaultParams()

	// Camera A's neighbourhood demands low resolution (informal privacy):
	// non-random intervention, so it carries a correction set.
	specA := &profile.Spec{Video: camA, Model: model, Class: scene.Car, Agg: estimate.AVG, Params: params}
	corrA, err := profile.BuildCorrectionAt(specA, 400, stats.NewStream(1))
	if err != nil {
		log.Fatal(err)
	}

	city, err := fleet.New(
		fleet.Camera{
			Name:       "5th-and-main",
			Video:      camA,
			Model:      model,
			Setting:    degrade.Setting{SampleFraction: 0.4, Resolution: 320},
			Correction: corrA,
		},
		fleet.Camera{
			Name:    "riverside",
			Video:   camB,
			Model:   model,
			Setting: degrade.Setting{SampleFraction: 0.15}, // bandwidth-limited uplink
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := city.Query(estimate.AVG, scene.Car, nil, params, stats.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city-wide average cars per frame: %.4f (error <= %.4f at %.0f%% confidence)\n",
		res.Estimate.Value, res.Estimate.ErrBound, (1-params.Delta)*100)
	for _, cam := range res.Cameras {
		fmt.Printf("  %-14s weight %.2f  answer %.4f  bound %.4f  (%d frames)\n",
			cam.Name, cam.Weight, cam.Estimate.Value, cam.Estimate.ErrBound, cam.Estimate.Sample)
	}

	// Demo-only verification against the exact fleet answer.
	truth, err := city.TrueAnswer(estimate.AVG, scene.Car, nil, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact city-wide answer: %.4f (actual error %.4f)\n",
		truth, math.Abs(res.Estimate.Value-truth)/truth)
}
