// Profiletransfer demonstrates the Section 3.3.1 fallback: when the query
// video is too sensitive even for a correction set, generate the
// degradation-accuracy profile on a *visually similar* video captured by
// the same camera at another time, and use it to guide interventions on
// the sensitive one. The example reproduces the Section 5.3.2 comparison
// between video A (MVI_40771) and video B (MVI_40775).
//
//	go run ./examples/profiletransfer
package main

import (
	"fmt"
	"log"
	"math"

	"smokescreen"
	"smokescreen/internal/profile"
)

func main() {
	sys := smokescreen.New(smokescreen.WithSeed(5))
	// The two corpora have different lengths (1720 vs 975 frames), so the
	// sweep uses absolute sample *sizes*, like the paper's Section 5.3.2,
	// converting to per-video fractions.
	sizes := []int{50, 100, 200, 350, 500}
	fractionsFor := func(total int) []float64 {
		out := make([]float64, len(sizes))
		for i, s := range sizes {
			out[i] = float64(s) / float64(total)
		}
		return out
	}

	// The profile we WISH we could compute (needs access to video A).
	target, err := sys.SweepProfile(
		mustQuery("SELECT AVG(count(car)) FROM mvi-40771 USING yolov4"),
		profile.SweepOptions{Fractions: fractionsFor(1720)})
	if err != nil {
		log.Fatal(err)
	}
	// The profile we actually compute: video B, same camera, other time.
	transferred, err := sys.TransferProfile(
		mustQuery("SELECT AVG(count(car)) FROM mvi-40771 USING yolov4"), "mvi-40775",
		profile.SweepOptions{Fractions: fractionsFor(975)})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sample size   target (video A)   transferred (video B)   |diff|")
	var maxDiff float64
	for i := range target.Points {
		a := target.Points[i].Estimate.ErrBound
		b := transferred.Points[i].Estimate.ErrBound
		d := math.Abs(a - b)
		maxDiff = math.Max(maxDiff, d)
		fmt.Printf("%11d   %16.4f   %21.4f   %.4f\n", sizes[i], a, b, d)
	}
	fmt.Printf("\nmax profile difference: %.4f (paper: similar videos stay within ~5%%)\n", maxDiff)

	// Choose a tradeoff from the TRANSFERRED profile and check it against
	// the target's true behaviour. The chosen point is an absolute sample
	// size; convert it back to video A's fraction scale.
	const budget = 0.3
	setting, ok := transferred.ChooseFraction(budget)
	if !ok {
		log.Fatal("no sample size within budget on the transferred profile")
	}
	chosenSize := int(setting.SampleFraction*975 + 0.5)
	fmt.Printf("\nchosen from the transferred profile: %d frames\n", chosenSize)
	targetBound, err := target.BoundAtFraction(float64(chosenSize) / 1720)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video A's own bound at that size: %.4f (within budget %.2f: %v)\n",
		targetBound, budget, targetBound <= budget*1.2)
}

func mustQuery(s string) *smokescreen.Query {
	q, err := smokescreen.ParseQuery(s)
	if err != nil {
		log.Fatal(err)
	}
	return q
}
