// Quickstart: the documented five-line Smokescreen flow on the fast test
// corpus — parse a query, generate degradation-accuracy profiles, choose a
// tradeoff against a public preference, and execute the query under the
// chosen interventions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"smokescreen"
)

func main() {
	sys := smokescreen.New(
		smokescreen.WithSeed(42),
		// Candidate design: sample fractions at 2% intervals up to 20%.
		smokescreen.WithFractionCandidates(0.02, 0.2),
	)

	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	// Stage 1 (paper Section 3.1): profile generation. The system builds
	// a correction set by the elbow heuristic and computes error bounds
	// for every intervention candidate.
	profiles, err := sys.GenerateProfiles(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles generated in %s with %d model invocations\n",
		profiles.Elapsed.Round(1e6), profiles.ModelInvocations)
	fmt.Printf("correction set: %.0f%% of the corpus\n\n", profiles.Correction.Fraction*100)

	// The administrator's first view: the error bound against the sample
	// fraction at native resolution with no image removal.
	fmt.Println("tradeoff curve (bound vs sample fraction):")
	bounds := profiles.Cube.SliceByFraction(0, 0)
	for fi, f := range profiles.Cube.Fractions {
		fmt.Printf("  f=%-5.2f err<=%.4f\n", f, bounds[fi])
	}

	// Stage 2: choosing a tradeoff. Public preference: at most 25% error.
	prefs := smokescreen.Preferences{MaxError: 0.25}
	setting, err := sys.ChooseTradeoff(profiles, prefs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen interventions for max error %.2f: %s\n", prefs.MaxError, setting)

	// Execute the query under the chosen degradation.
	result, err := sys.ExecuteSetting(q, setting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate answer: %.4f (error <= %.4f, %d of %d frames touched)\n",
		result.Estimate.Value, result.Estimate.ErrBound, result.Estimate.Sample, result.Estimate.N)

	// For the demo only: verify against the exact answer. A production
	// deployment cannot do this — that is the whole point.
	truth, err := sys.GroundTruth(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact answer:       %.4f (actual error %.4f)\n",
		truth, math.Abs(result.Estimate.Value-truth)/truth)
}
