// Trafficcount walks through the paper's running example (Examples 1-3):
// Harry, the public administrator, needs the average number of cars per
// frame on the night-street camera within 10% of the correct answer, while
// degrading the video as much as possible for privacy and energy reasons.
// Instead of guessing a resolution (Example 1's failure), he generates a
// degradation-accuracy profile along the resolution axis and picks the
// lowest resolution whose bound stays inside the budget (Example 2).
//
//	go run ./examples/trafficcount
//
// Note: this example profiles the full 19,463-frame night-street corpus
// and takes a couple of minutes on first run while detector outputs are
// computed.
package main

import (
	"fmt"
	"log"
	"math"

	"smokescreen"
	"smokescreen/internal/profile"
	"smokescreen/internal/stats"
)

func main() {
	// The maintenance department needs the TRUE error within 10%. Profile
	// bounds are conservative upper bounds (they carry the correction
	// set's own uncertainty, ~0.19 here), so the administrator calibrates
	// the threshold accordingly (paper Section 2.3: "administrators can
	// adjust the analytical accuracy threshold in the selection process").
	const errorBudget = 0.25

	sys := smokescreen.New(smokescreen.WithSeed(7))
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM night-street USING mask-rcnn")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := sys.Resolve(q)
	if err != nil {
		log.Fatal(err)
	}

	// Resolution is a non-random intervention, so profile repair needs a
	// correction set; the elbow heuristic sizes it automatically.
	fmt.Println("constructing correction set (elbow heuristic)...")
	corr, err := profile.ConstructCorrection(spec, 0.2, stats.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correction set: %.0f%% of the corpus (err_b(v) = %.4f)\n\n",
		corr.Fraction*100, corr.Correction.Estimate.ErrBound)

	// Profile the resolution axis at a fixed generous sample fraction.
	fmt.Println("resolution tradeoff curve (f = 0.5):")
	type point struct {
		resolution int
		bound      float64
	}
	var curve []point
	root := stats.NewStream(11)
	for _, p := range spec.Model.Resolutions(10) {
		est, err := spec.EstimateSetting(smokescreen.Setting{
			SampleFraction: 0.5,
			Resolution:     p,
		}, corr.Correction, root.Child(uint64(p)))
		if err != nil {
			log.Fatal(err)
		}
		curve = append(curve, point{p, est.ErrBound})
		marker := ""
		if est.ErrBound <= errorBudget {
			marker = "  <- within budget"
		}
		fmt.Printf("  %4dx%-4d err<=%.4f%s\n", p, p, est.ErrBound, marker)
	}

	// Harry picks the lowest resolution within the budget.
	chosen := 0
	for _, pt := range curve {
		if pt.bound <= errorBudget && (chosen == 0 || pt.resolution < chosen) {
			chosen = pt.resolution
		}
	}
	if chosen == 0 {
		log.Fatalf("no resolution satisfies the %.0f%% budget; relax the preference", errorBudget*100)
	}
	fmt.Printf("\nHarry configures the cameras to %dx%d.\n", chosen, chosen)

	// Run the production query under the chosen degradation.
	result, err := sys.ExecuteSetting(q, smokescreen.Setting{SampleFraction: 0.5, Resolution: chosen})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := sys.GroundTruth(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average cars per frame: %.4f (bound %.4f)\n", result.Estimate.Value, result.Estimate.ErrBound)
	fmt.Printf("exact answer (demo only): %.4f, actual error %.4f — within the department's 10%% requirement: %v\n",
		truth,
		math.Abs(result.Estimate.Value-truth)/truth,
		math.Abs(result.Estimate.Value-truth)/truth <= 0.10)
}
