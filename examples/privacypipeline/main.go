// Privacypipeline demonstrates the full camera-to-processor deployment:
// a simulated networked camera applies the administrator's interventions
// on-device (frame sampling, reduced resolution, face-frame removal),
// ships compressed degraded frames over a byte-accounted link, and the
// central query processor runs detection on the received pixels only. The
// example quantifies the *benefit* side of the tradeoff: bandwidth and
// energy saved relative to an undegraded stream.
//
//	go run ./examples/privacypipeline
package main

import (
	"fmt"
	"log"
	"net"

	"smokescreen"
	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/transport"
)

// session streams the setting through an in-process pipe and returns the
// camera's report plus the mean per-frame car count the processor measured.
func session(setting degrade.Setting) (camera.Report, float64, int) {
	v := dataset.MustLoad("small")
	model := detect.YOLOv4Sim()
	node := &camera.Node{
		Video:   v,
		Model:   model,
		Setting: setting,
		Energy:  camera.DefaultEnergyModel(),
	}

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	reportCh := make(chan camera.Report, 1)
	go func() {
		report, err := node.Stream(transport.New(client), stats.NewStream(3))
		if err != nil {
			log.Fatal(err)
		}
		reportCh <- report
	}()

	var totalCars, frames int
	_, err := camera.Receive(transport.New(server), func(s *camera.Session, fr camera.ReceivedFrame) error {
		totalCars += detect.CountClass(s.Detect(model, fr), scene.Car)
		frames++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	report := <-reportCh
	if frames == 0 {
		return report, 0, 0
	}
	return report, float64(totalCars) / float64(frames), frames
}

func main() {
	// Reference: a lightly degraded stream (every 10th frame, native-ish).
	reference := degrade.Setting{SampleFraction: 0.1, Resolution: 320}
	// Policy: stronger sampling, half resolution, and no frame containing
	// a face ever leaves the camera.
	policy := degrade.Setting{
		SampleFraction: 0.05,
		Resolution:     160,
		Restricted:     []smokescreen.Class{smokescreen.Face},
	}

	refReport, refAvg, refFrames := session(reference)
	polReport, polAvg, polFrames := session(policy)

	fmt.Println("reference stream:", reference)
	fmt.Printf("  frames %4d  bytes %8d  energy %.3f J  avg cars %.3f\n",
		refFrames, refReport.BytesTransmitted, refReport.TotalJoules(), refAvg)
	fmt.Println("policy stream:   ", policy)
	fmt.Printf("  frames %4d  bytes %8d  energy %.3f J  avg cars %.3f\n",
		polFrames, polReport.BytesTransmitted, polReport.TotalJoules(), polAvg)

	fmt.Printf("\nbandwidth saved: %.1f%%\n",
		100*(1-float64(polReport.BytesTransmitted)/float64(refReport.BytesTransmitted)))
	fmt.Printf("energy saved:    %.1f%%\n",
		100*(1-polReport.TotalJoules()/refReport.TotalJoules()))
	fmt.Println("privacy:         no face-containing frame was transmitted (removed on-camera)")

	// The analytical price of the policy, from the estimator.
	sys := smokescreen.New(smokescreen.WithSeed(3))
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small SAMPLE 0.05 RESOLUTION 160 REMOVE face")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimator answer under the policy: %.3f with error bound %.4f\n",
		res.Estimate.Value, res.Estimate.ErrBound)
}
