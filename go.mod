module smokescreen

go 1.22
