package smokescreen_test

// Godoc examples for the public API. These run as tests, so the documented
// flows are guaranteed to keep working; the fast "small" corpus keeps them
// quick.

import (
	"fmt"

	"smokescreen"
)

// ExampleParseQuery shows the analytical query language.
func ExampleParseQuery() {
	q, err := smokescreen.ParseQuery(
		"SELECT AVG(count(car)) FROM small SAMPLE 0.2 RESOLUTION 160 REMOVE face")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Agg, q.Class, q.Dataset)
	fmt.Println(q.Setting)
	// Output:
	// AVG car small
	// f=0.2 p=160x160 c=face
}

// ExampleSystem_Execute runs a query under its own interventions and
// reports the answer with a sound error bound.
func ExampleSystem_Execute() {
	sys := smokescreen.New(smokescreen.WithSeed(42))
	q, err := smokescreen.ParseQuery("SELECT COUNT(*) FROM small WHERE count(car) >= 1 SAMPLE 0.5")
	if err != nil {
		panic(err)
	}
	res, err := sys.Execute(q)
	if err != nil {
		panic(err)
	}
	truth, err := sys.GroundTruth(q)
	if err != nil {
		panic(err)
	}
	withinBound := res.Estimate.ErrBound >= abs(res.Estimate.Value-truth)/truth
	fmt.Println("frames sampled:", res.Estimate.Sample, "of", res.Estimate.N)
	fmt.Println("true answer within the bound:", withinBound)
	// Output:
	// frames sampled: 600 of 1200
	// true answer within the bound: true
}

// ExampleSystem_ChooseTradeoff walks the two-stage administration
// procedure: generate profiles, then pick the most degraded setting inside
// the error budget.
func ExampleSystem_ChooseTradeoff() {
	sys := smokescreen.New(
		smokescreen.WithSeed(42),
		smokescreen.WithFractionCandidates(0.05, 0.2),
		smokescreen.WithCorrectionLimit(0.1),
	)
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small")
	if err != nil {
		panic(err)
	}
	profiles, err := sys.GenerateProfiles(q)
	if err != nil {
		panic(err)
	}
	setting, err := sys.ChooseTradeoff(profiles, smokescreen.Preferences{MaxError: 0.3})
	if err != nil {
		panic(err)
	}
	fmt.Println("a setting was chosen:", setting.SampleFraction > 0)
	// Output:
	// a setting was chosen: true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ExampleSystem_ExecuteUntil shows adaptive execution: sample frames until
// the any-time error bound reaches the target, touching as little video as
// possible.
func ExampleSystem_ExecuteUntil() {
	sys := smokescreen.New(smokescreen.WithSeed(42))
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small")
	if err != nil {
		panic(err)
	}
	res, err := sys.ExecuteUntil(q, 0.4, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("target met:", res.Met)
	fmt.Println("bound within target:", res.Estimate.ErrBound <= 0.4)
	fmt.Println("touched less than half the corpus:", res.FramesUsed*2 < res.Estimate.N)
	// Output:
	// target met: true
	// bound within target: true
	// touched less than half the corpus: true
}
