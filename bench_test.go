package smokescreen_test

// This file is the benchmark harness required by DESIGN.md: one testing.B
// benchmark per paper figure/claim (regenerating the experiment at bench
// scale) plus micro-benchmarks of the core estimators and the detection
// substrate. Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benches use the experiments package's quick configuration so a
// full -bench=. sweep finishes in minutes; cmd/smokebench produces the
// full-scale numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"net"
	"testing"

	"smokescreen"
	"smokescreen/internal/camera"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/experiments"
	"smokescreen/internal/outputs"
	"smokescreen/internal/plan"
	"smokescreen/internal/profile"
	"smokescreen/internal/raster"
	"smokescreen/internal/scene"
	"smokescreen/internal/stats"
	"smokescreen/internal/stream"
	"smokescreen/internal/transport"
)

// ensureDetectConfig flips the detection-path toggles to the requested
// configuration, resetting the detect-side caches only on an actual
// transition: outputs produced under one (quantized, delta) config must
// never be served under another, but within one config the caches are
// allowed to accumulate across benchmarks exactly as they did in the
// historical float sweeps — the committed BENCH artifacts are measured
// under that accumulation, so a fair A/B must reproduce it per config.
func ensureDetectConfig(quant bool, mode detect.DeltaMode) {
	if detect.Quantized() == quant && detect.DeltaDetectMode() == mode {
		return
	}
	detect.SetQuantized(quant)
	detect.SetDeltaMode(mode)
	detect.ResetCaches()
}

// benchExperiment runs one registered experiment at quick scale under the
// historical configuration (float rasters, no delta detection).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	ensureDetectConfig(false, detect.DeltaOff)
	cfg := experiments.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExperimentAccel runs one registered experiment with the detection
// hot path accelerated: quantized uint8 rasters plus bounded temporal
// delta detection. The detection-heavy figure families (4 and 6) bench in
// this configuration — the production setting for large corpora — and
// report the invocation and tile-reuse counters proving the delta path
// engaged; their *Baseline twins keep both toggles off for the A/B. The
// two accel benchmarks run back to back (source order) so the second
// reuses the first's accelerated output tables, mirroring how the float
// figure benches have always shared float tables within a sweep.
func benchExperimentAccel(b *testing.B, id string) {
	b.Helper()
	ensureDetectConfig(true, detect.DeltaBounded)
	cfg := experiments.QuickConfig()
	var invocations, tilesReused, candsReused int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := detect.Invocations()
		dcBefore := detect.DeltaCounters()
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
		invocations += detect.Invocations() - before
		dc := detect.DeltaCounters()
		tilesReused += dc.TilesReused - dcBefore.TilesReused
		candsReused += dc.CandidatesReused - dcBefore.CandidatesReused
	}
	n := float64(b.N)
	b.ReportMetric(float64(invocations)/n, "invocations/op")
	b.ReportMetric(float64(tilesReused)/n, "tiles-reused/op")
	b.ReportMetric(float64(candsReused)/n, "candidates-reused/op")
}

// One benchmark per paper artifact (see the per-experiment index in
// DESIGN.md).

func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// The two accelerated benches are adjacent in source (= execution) order
// on purpose: one config transition in, one out, and Figure6 reuses the
// accel tables Figure4 built — the same within-config sharing the float
// benches get (Figure5 reuses Figure4Baseline's float tables below).
func BenchmarkFigure4(b *testing.B) { benchExperimentAccel(b, "figure4") }
func BenchmarkFigure6(b *testing.B) { benchExperimentAccel(b, "figure6") }

// The ladder bench stays inside the accel block: its detect stage runs
// blur/quantize/occlusion views through the same accelerated substrate,
// and it reuses the tables Figure4/Figure6 built for the shared rungs.
func BenchmarkLadderGenerate(b *testing.B) { benchExperimentAccel(b, "ladder") }

// Baseline twins: the historical float + per-frame configuration, kept so
// BENCH artifacts carry the A/B and regressions in either path stand out.
func BenchmarkFigure4Baseline(b *testing.B) { benchExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)         { benchExperiment(b, "figure5") }
func BenchmarkFigure6Baseline(b *testing.B) { benchExperiment(b, "figure6") }
func BenchmarkLadderBaseline(b *testing.B)  { benchExperiment(b, "ladder") }
func BenchmarkAdversarial(b *testing.B)     { benchExperiment(b, "adversarial") }
func BenchmarkFigure7(b *testing.B)         { benchExperiment(b, "figure7") }
func BenchmarkFigure8(b *testing.B)         { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)         { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B)        { benchExperiment(b, "figure10") }

func BenchmarkProfileGenerationTime(b *testing.B) { benchExperiment(b, "timing") }
func BenchmarkHeadlineClaims(b *testing.B)        { benchExperiment(b, "claims") }
func BenchmarkAblations(b *testing.B)             { benchExperiment(b, "ablations") }
func BenchmarkCalibration(b *testing.B)           { benchExperiment(b, "calibration") }
func BenchmarkModelAccuracy(b *testing.B)         { benchExperiment(b, "modelaccuracy") }
func BenchmarkBandwidth(b *testing.B)             { benchExperiment(b, "bandwidth") }

// Estimator micro-benchmarks: the per-call cost of Algorithm 1/2/3 and the
// baselines, on a representative 1000-sample input.

func benchSample(n int) ([]float64, int) {
	s := stats.NewStream(99)
	population := make([]float64, 20000)
	for i := range population {
		population[i] = float64(s.Poisson(3))
	}
	idx := s.SampleWithoutReplacement(len(population), n)
	sample := make([]float64, n)
	for i, j := range idx {
		sample[i] = population[j]
	}
	return sample, len(population)
}

func BenchmarkEstimateAVG(b *testing.B) {
	sample, N := benchSample(1000)
	p := estimate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.Smokescreen(estimate.AVG, sample, N, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateMAX(b *testing.B) {
	sample, N := benchSample(1000)
	p := estimate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.Smokescreen(estimate.MAX, sample, N, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateRepair(b *testing.B) {
	sample, N := benchSample(1000)
	corrSample, _ := benchSample(500)
	p := estimate.DefaultParams()
	corr, err := estimate.NewCorrection(estimate.AVG, corrSample, N, p)
	if err != nil {
		b.Fatal(err)
	}
	degraded, err := estimate.Smokescreen(estimate.AVG, sample, N, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corr.Repair(estimate.AVG, degraded, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineEBGS(b *testing.B) {
	sample, N := benchSample(1000)
	p := estimate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.BaselineEstimate(estimate.EBGS, estimate.AVG, sample, N, p); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkDetectFramePatch(b *testing.B) {
	ensureDetectConfig(false, detect.DeltaOff)
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DetectFrame(v, i%v.NumFrames(), 160)
	}
}

func BenchmarkDetectFrameFull(b *testing.B) {
	ensureDetectConfig(false, detect.DeltaOff)
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DetectFrameFull(v, i%v.NumFrames(), 160)
	}
}

func BenchmarkRenderNative(b *testing.B) {
	v := dataset.MustLoad("small")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.RenderNative(i % v.NumFrames())
	}
}

func BenchmarkDownsample(b *testing.B) {
	v := dataset.MustLoad("small")
	img := v.RenderNative(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raster.Downsample(img, 96, 96)
	}
}

func BenchmarkSampleWithoutReplacement(b *testing.B) {
	s := stats.NewStream(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleWithoutReplacement(20000, 1000)
	}
}

func BenchmarkDegradeApply(b *testing.B) {
	ensureDetectConfig(false, detect.DeltaOff)
	v := dataset.MustLoad("small")
	m := detect.YOLOv4Sim()
	setting := degrade.Setting{SampleFraction: 0.1, Resolution: 160}
	root := stats.NewStream(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := degrade.Apply(v, m, setting, root.Child(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepFractions(b *testing.B) {
	ensureDetectConfig(false, detect.DeltaOff)
	spec := &profile.Spec{
		Video:  dataset.MustLoad("small"),
		Model:  detect.YOLOv4Sim(),
		Class:  scene.Car,
		Agg:    estimate.AVG,
		Params: estimate.DefaultParams(),
	}
	opts := profile.SweepOptions{Fractions: []float64{0.02, 0.05, 0.1}}
	root := stats.NewStream(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.SweepFractions(spec, opts, root.Child(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// Hypercube generation is the system's dominant cost (every cell drives
// the detectors); these two benches pin the sequential reference against
// the worker-pool fan-out (one worker per CPU). Caches are dropped each
// iteration so every op pays the full detector cost, and the detector
// invocation count is reported alongside time: the parallel path may
// duplicate a few frame evaluations when workers race on a cache key, and
// that cost must stay visible.

func benchHypercube(b *testing.B, parallelism int) {
	ensureDetectConfig(false, detect.DeltaOff)
	spec := &profile.Spec{
		Video:  dataset.MustLoad("small"),
		Model:  detect.YOLOv4Sim(),
		Class:  scene.Car,
		Agg:    estimate.AVG,
		Params: estimate.DefaultParams(),
	}
	root := stats.NewStream(7)
	res, err := profile.ConstructCorrection(spec, 1, root.Child(1))
	if err != nil {
		b.Fatal(err)
	}
	opts := profile.HypercubeOptions{
		Fractions:   []float64{0.02, 0.1},
		Correction:  res.Correction,
		Parallelism: parallelism,
	}
	var invocations int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		detect.ResetCaches()
		b.StartTimer()
		before := detect.Invocations()
		if _, err := profile.GenerateHypercubeOpts(spec, opts, root.Child(2)); err != nil {
			b.Fatal(err)
		}
		invocations += detect.Invocations() - before
	}
	b.ReportMetric(float64(invocations)/float64(b.N), "invocations/op")
}

func BenchmarkHypercubeSequential(b *testing.B) { benchHypercube(b, 1) }
func BenchmarkHypercubeParallel(b *testing.B)   { benchHypercube(b, 0) }

// Figure6-shaped dedup benches: one op generates the hypercube for every
// class the model knows over one corpus — the administrator's Figure 6
// workload, where person, face and car curves all come from the same
// degraded views. The simulated detectors (like the real YOLOv4/Mask
// R-CNN) emit every class in one pass, so with cross-class sharing (the
// default) the column store serves all three hypercubes from one
// detection per (frame, resolution); legacy per-class keying
// (outputs.SetSharing(false)) re-detects per class. Comparing the two
// pins the PR's headline invocation drop, and the per-stage wall time
// (plan/detect/estimate, from the pipeline's stage accounting) shows
// where the savings land.

func benchHypercubeFigure6(b *testing.B, sharing bool) {
	ensureDetectConfig(false, detect.DeltaOff)
	prevSharing := outputs.Sharing()
	outputs.SetSharing(sharing)
	b.Cleanup(func() { outputs.SetSharing(prevSharing) })

	classes := []scene.Class{scene.Car, scene.Person, scene.Face}
	root := stats.NewStream(7)
	specs := make([]*profile.Spec, len(classes))
	cubeOpts := make([]profile.HypercubeOptions, len(classes))
	for ci, class := range classes {
		specs[ci] = &profile.Spec{
			Video:  dataset.MustLoad("small"),
			Model:  detect.YOLOv4Sim(),
			Class:  class,
			Agg:    estimate.AVG,
			Params: estimate.DefaultParams(),
		}
		res, err := profile.ConstructCorrection(specs[ci], 1, root.Child(uint64(1+ci)))
		if err != nil {
			b.Fatal(err)
		}
		cubeOpts[ci] = profile.HypercubeOptions{
			Fractions:  []float64{0.02, 0.1},
			Correction: res.Correction,
		}
	}
	var invocations int64
	var stages plan.StageStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		detect.ResetCaches()
		plan.ResetStages()
		b.StartTimer()
		before := detect.Invocations()
		for ci := range specs {
			// One sampling plan for the whole family (same stream child):
			// every class's hypercube sweeps the same degraded views, which
			// is both what an administrator comparing classes wants and what
			// lets the column store detect each view exactly once.
			if _, err := profile.GenerateHypercubeOpts(specs[ci], cubeOpts[ci], root.Child(2)); err != nil {
				b.Fatal(err)
			}
		}
		invocations += detect.Invocations() - before
		s := plan.Stages()
		stages.PlanNS += s.PlanNS
		stages.DetectNS += s.DetectNS
		stages.EstimateNS += s.EstimateNS
		stages.DedupSavedFrames += s.DedupSavedFrames
	}
	n := float64(b.N)
	b.ReportMetric(float64(invocations)/n, "invocations/op")
	b.ReportMetric(float64(stages.PlanNS)/n, "plan-ns/op")
	b.ReportMetric(float64(stages.DetectNS)/n, "detect-ns/op")
	b.ReportMetric(float64(stages.EstimateNS)/n, "estimate-ns/op")
	b.ReportMetric(float64(stages.DedupSavedFrames)/n, "dedup-saved-frames/op")
}

func BenchmarkHypercubeFigure6Dedup(b *testing.B)  { benchHypercubeFigure6(b, true) }
func BenchmarkHypercubeFigure6Legacy(b *testing.B) { benchHypercubeFigure6(b, false) }

// Ablation benches for the DESIGN.md call-outs: the single-n confidence
// construction vs EBGS's any-time schedule, and Hoeffding-Serfling vs the
// empirical Bernstein inequality inside Algorithm 1.

func BenchmarkAblationBoundTightness(b *testing.B) {
	sample, N := benchSample(200)
	p := estimate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ours, _ := estimate.Smokescreen(estimate.AVG, sample, N, p)
		hs, _ := estimate.BaselineEstimate(estimate.HoeffdingSerfling, estimate.AVG, sample, N, p)
		ebgs, _ := estimate.BaselineEstimate(estimate.EBGS, estimate.AVG, sample, N, p)
		if ours.ErrBound > hs.ErrBound || ours.ErrBound > ebgs.ErrBound {
			b.Fatal("tightness ordering violated")
		}
	}
}

func BenchmarkEndToEndQuery(b *testing.B) {
	ensureDetectConfig(false, detect.DeltaOff)
	sys := smokescreen.New(smokescreen.WithSeed(11))
	q, err := smokescreen.ParseQuery("SELECT AVG(count(car)) FROM small SAMPLE 0.1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Streaming-ingest throughput: a camera session over an in-process pipe
// into the stream.Receiver, windowed profiles maintained as frames
// arrive. The A/B pair is the PR's headline claim — incremental window
// refresh (evict departed frames, fold in new) against full
// per-window regeneration — and the wire-pixels variant prices the
// received-raster detection backend against the replay backend.

func benchStreamIngest(b *testing.B, fullRefresh, wirePixels bool) {
	b.Helper()
	ensureDetectConfig(false, detect.DeltaOff)
	v := dataset.MustLoad("small")
	model := detect.YOLOv4Sim()
	node := &camera.Node{
		Video:   v,
		Model:   model,
		Setting: degrade.Setting{SampleFraction: 0.2, Resolution: 160},
		Energy:  camera.DefaultEnergyModel(),
	}
	var frames, windows int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recv, err := stream.New(stream.Config{
			Model:        model,
			Class:        scene.Car,
			Agg:          estimate.AVG,
			WindowSpan:   200,
			WindowStride: 100,
			Sources:      []*scene.Video{v},
			WirePixels:   wirePixels,
			FullRefresh:  fullRefresh,
		})
		if err != nil {
			b.Fatal(err)
		}
		client, server := net.Pipe()
		camErr := make(chan error, 1)
		go func() {
			defer client.Close()
			_, err := node.Stream(transport.New(client), stats.NewStream(uint64(1000+i)))
			camErr <- err
		}()
		if err := recv.Run(context.Background(), transport.New(server)); err != nil {
			b.Fatal(err)
		}
		server.Close()
		if err := <-camErr; err != nil {
			b.Fatal(err)
		}
		st := recv.Status()
		frames += int64(st.Frames)
		windows += int64(st.Windows)
	}
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(frames)/elapsed.Seconds(), "frames/s")
	}
	if windows > 0 {
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(windows), "refresh-ns/window")
	}
}

func BenchmarkStreamIngestIncremental(b *testing.B) { benchStreamIngest(b, false, false) }
func BenchmarkStreamIngestFullRefresh(b *testing.B) { benchStreamIngest(b, true, false) }
func BenchmarkStreamIngestWirePixels(b *testing.B)  { benchStreamIngest(b, false, true) }
