# Smokescreen-Go build and reproduction targets.

GO ?= go

.PHONY: build test test-race bench figures figures-quick examples clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/detect/ ./internal/transport/ ./internal/camera/ ./internal/degrade/

# One testing.B benchmark per paper figure/claim plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Full-scale evaluation reports (the EXPERIMENTS.md numbers). Detector
# outputs are cached under .cache so reruns are fast.
figures:
	$(GO) run ./cmd/smokebench -out results/ -cache .cache/

figures-quick:
	$(GO) run ./cmd/smokebench -quick -out results-quick/ -cache .cache/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/privacypipeline
	$(GO) run ./examples/profiletransfer
	$(GO) run ./examples/cityfleet
	$(GO) run ./examples/adaptivequery
	# trafficcount profiles the full night-street corpus (minutes):
	$(GO) run ./examples/trafficcount

clean:
	rm -rf results-quick .cache
