# Smokescreen-Go build and reproduction targets.

GO ?= go

.PHONY: build lint lint-ratchet test test-race fuzz-smoke ci bench bench-kernels bench-json bench-diff figures figures-quick examples serve-smoke stream-smoke fleet-smoke clean

# Pinned staticcheck version: `make lint` refuses other versions rather
# than drift between hosts. staticcheck is optional — hermetic builders
# have no network to install it, so lint degrades to go vet with a notice.
STATICCHECK_VERSION ?= 2025.1

build:
	$(GO) build ./...

# lint layers three gates: go vet, the repo's own smokevet analyzer suite
# (determinism, poolhygiene, ctxflow, atomiccounter, goroleak, lockorder,
# axisreg, errcontract — see DESIGN.md §10 and §15), and optionally a
# version-pinned staticcheck. smokevet is built from this repo, so it
# always runs; a finding fails the build with
# `file:line: [analyzer] message`, and a stale //smokevet:ignore is
# itself a finding (the suppression audit runs on every full suite).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/smokevet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		got=$$(staticcheck -version 2>/dev/null | head -n1); \
		case "$$got" in \
		*$(STATICCHECK_VERSION)*) staticcheck ./... ;; \
		*) echo "lint: staticcheck $$got found, want $(STATICCHECK_VERSION); skipping (pin with STATICCHECK_VERSION=...)" ;; \
		esac; \
	else \
		echo "lint: staticcheck not installed; ran go vet only (install staticcheck@$(STATICCHECK_VERSION) for the full gate)"; \
	fi

# The ratchet gate: smokevet in baseline mode fails only on findings not
# grandfathered by the committed lint-baseline.json, so the suite can
# grow new analyzers without a flag-day cleanup while new code is held
# to the full standard. The baseline is currently empty (zero accepted
# debt); regenerate after an intentional change with
#   go run ./cmd/smokevet -write-baseline lint-baseline.json ./...
# and review the diff — the file only ever shrinks in a healthy repo.
lint-ratchet:
	$(GO) run ./cmd/smokevet -baseline lint-baseline.json ./...

test: lint
	$(GO) test ./...

# Race coverage for every package that runs or feeds the worker pools:
# the scheduler itself, the detector caches and pooled scratch buffers,
# profile generation, and the core/transport/camera plumbing. The
# experiments package runs only its parallel determinism tests under the
# race detector — its full figure suite is numeric, race-free by
# construction on top of these packages, and an order of magnitude too
# slow with instrumentation on.
test-race:
	$(GO) test -race ./internal/parallel/ ./internal/detect/ ./internal/raster/ \
		./internal/profile/ ./internal/core/ ./internal/scene/ \
		./internal/transport/ ./internal/camera/ ./internal/degrade/ \
		./internal/store/ ./internal/server/ ./internal/outputs/ ./internal/plan/ \
		./internal/estimate/ ./internal/fleet/ ./internal/query/ ./internal/stats/ \
		./internal/stream/ ./internal/fleetd/ ./internal/analysis/ \
		./internal/codec/ ./internal/dataset/ ./internal/evaluate/
	$(GO) test -race -run 'Parallel' ./internal/experiments/

# Short fuzz pass over the decoders whose inputs can be torn or
# tampered: the store's JSON envelope, the SOUT v2 column tables, the
# tile-delta codec, the transport framing the streaming ingest trusts
# from the network, and the smokevet suppression-comment grammar (the
# lint gate's own input surface). ~10s per target keeps it cheap enough
# to ride in CI; longer local runs:
#   go test -run '^$$' -fuzz FuzzEnvelopeDecode ./internal/store/
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzOutputsDecode -fuzztime 10s ./internal/outputs/
	$(GO) test -run '^$$' -fuzz FuzzTileDelta -fuzztime 10s ./internal/detect/
	$(GO) test -run '^$$' -fuzz FuzzReceive -fuzztime 10s ./internal/transport/
	$(GO) test -run '^$$' -fuzz FuzzSuppressParse -fuzztime 10s ./internal/analysis/

# The full CI gate with per-stage timing (scripts/ci.sh).
ci:
	sh ./scripts/ci.sh

# One testing.B benchmark per paper figure/claim plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Raster/detect kernel micro-benchmarks: fast kernels vs their retained
# naive oracles, with ns/op and B/op so both the asymptotic win and the
# pooling win are visible.
bench-kernels:
	$(GO) test -run xxx -bench 'Kernel' -benchmem ./internal/raster/ ./internal/detect/

# Machine-readable benchmark regression artifact: one full -benchtime=1x
# sweep rendered to JSON (ns/op, B/op, allocs/op, invocations/op, and the
# plan/detect/estimate stage split) by cmd/benchjson. Committed per PR as
# BENCH_<pr>.json.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x > bench.tmp
	$(GO) run ./cmd/benchjson -out BENCH_PR9.json < bench.tmp
	rm -f bench.tmp

# Benchmark regression gate: compare the previous PR's committed artifact
# against this PR's. Fails (non-zero exit) when any benchmark's ns/op
# regresses by more than -max-regress (default 25%); benchmarks present
# in only one artifact are listed but never fail the gate — which is how
# the new BenchmarkLadder* family rides one-sided in PR9 (no PR8
# baseline exists for it). The noise floor is 2ms from PR9 on: the 1x
# sweep runs every bench once in source order, so a single-iteration
# micro bench in the 1-2ms range (DetectFrameFull) measures whichever
# cache state the preceding benches left, and adding a bench earlier in
# the roster shifts it by ±40% with zero code change (steady-state A/B
# against the PR8 tree shows identical ~0.2ms warm timings).
bench-diff:
	$(GO) run ./cmd/benchjson -diff -min-ns 2e6 BENCH_PR8.json BENCH_PR9.json

# Full-scale evaluation reports (the EXPERIMENTS.md numbers). Detector
# outputs are cached under .cache so reruns are fast.
figures:
	$(GO) run ./cmd/smokebench -out results/ -cache .cache/

figures-quick:
	$(GO) run ./cmd/smokebench -quick -out results-quick/ -cache .cache/

# End-to-end profile-service smoke: ephemeral-port daemon, one tiny
# profile through the CLI's -remote path, store-hit reuse, SIGTERM drain.
serve-smoke:
	sh ./scripts/serve_smoke.sh

# End-to-end streaming-ingest smoke: camera sessions into a live daemon
# through POST /v1/streams, several windows with any-time bounds, then a
# mid-flight cancel that must not persist a partial window.
stream-smoke:
	sh ./scripts/stream_smoke.sh

# End-to-end fleet smoke: three real smokescreend daemons sharing a ring,
# smokeload's herd + steady scenarios in urls mode, a kill -9 of one node
# with a survivor re-POST (lease expiry), then SIGTERM drain of the rest.
fleet-smoke:
	sh ./scripts/fleet_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/profileservice
	$(GO) run ./examples/privacypipeline
	$(GO) run ./examples/profiletransfer
	$(GO) run ./examples/cityfleet
	$(GO) run ./examples/adaptivequery
	# trafficcount profiles the full night-street corpus (minutes):
	$(GO) run ./examples/trafficcount

clean:
	rm -rf results-quick .cache
