// Package smokescreen is the public API of Smokescreen-Go, a from-scratch
// Go reproduction of "Controlled Intentional Degradation in Analytical
// Video Systems" (He & Cafarella, SIGMOD 2022).
//
// Smokescreen lets a public administrator intentionally degrade
// surveillance video — reduced frame sampling, reduced resolution, image
// removal — for privacy, bandwidth, energy or legal-compliance reasons,
// while keeping analytical aggregate queries (AVG, SUM, COUNT, MAX, MIN
// over per-frame detector outputs) inside a known error budget. Its core
// product is the *degradation-accuracy profile*: a per-query tradeoff
// curve of error upper bounds across intervention settings, computed
// without access to the non-degraded video.
//
// # Quick start
//
//	sys := smokescreen.New()
//	q, err := smokescreen.ParseQuery(
//	    "SELECT AVG(count(car)) FROM night-street USING mask-rcnn")
//	profiles, err := sys.GenerateProfiles(q)
//	setting, err := sys.ChooseTradeoff(profiles, smokescreen.Preferences{MaxError: 0.1})
//	result, err := sys.ExecuteSetting(q, setting)
//	fmt.Println(result.Estimate.Value, result.Estimate.ErrBound)
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-versus-measured
// reproduction record.
package smokescreen

import (
	"smokescreen/internal/core"
	"smokescreen/internal/dataset"
	"smokescreen/internal/degrade"
	"smokescreen/internal/detect"
	"smokescreen/internal/estimate"
	"smokescreen/internal/profile"
	"smokescreen/internal/query"
	"smokescreen/internal/scene"
)

// Core system types.
type (
	// System is a Smokescreen instance: profile generation, tradeoff
	// selection and degraded query execution.
	System = core.System
	// Option configures New.
	Option = core.Option
	// Profiles is the output of the profile-generation stage: the
	// degradation hypercube plus the constructed correction set.
	Profiles = core.Profiles
	// Preferences are the public preferences guiding a tradeoff choice.
	Preferences = core.Preferences
	// Result is an executed query answer with its error bound.
	Result = core.Result
)

// Query language types.
type (
	// Query is a parsed analytical query.
	Query = query.Query
	// Predicate is the COUNT(*) WHERE filter.
	Predicate = query.Predicate
)

// Intervention and estimation types.
type (
	// Setting is one point of the intervention space: the paper's
	// (f, p, c) triple.
	Setting = degrade.Setting
	// Estimate is an approximate answer with its error upper bound.
	Estimate = estimate.Estimate
	// Params carries the estimator knobs (risk delta, extreme quantile r).
	Params = estimate.Params
	// Agg names an aggregate function.
	Agg = estimate.Agg
	// Class names a detectable object class.
	Class = scene.Class
	// Profile is a single-axis degradation-accuracy tradeoff curve.
	Profile = profile.Profile
	// Hypercube is the full (f, p, c) bound grid.
	Hypercube = profile.Hypercube
	// SweepOptions configures a fraction-axis profile sweep.
	SweepOptions = profile.SweepOptions
	// Model is a simulated detector profile.
	Model = detect.Model
	// AdaptiveResult is the outcome of System.ExecuteUntil: adaptive
	// sampling until an error target is met.
	AdaptiveResult = core.AdaptiveResult
	// StreamingEstimator maintains a running answer and bound as sampled
	// frames arrive (online aggregation on Smokescreen bounds).
	StreamingEstimator = estimate.StreamingEstimator
)

// Aggregate functions.
const (
	AVG   = estimate.AVG
	SUM   = estimate.SUM
	COUNT = estimate.COUNT
	MAX   = estimate.MAX
	MIN   = estimate.MIN
	VAR   = estimate.VAR
)

// Object classes.
const (
	Car    = scene.Car
	Person = scene.Person
	Face   = scene.Face
)

// New constructs a Smokescreen system. See the core options WithSeed,
// WithCorrectionLimit and WithFractionCandidates.
var New = core.New

// System options.
var (
	WithSeed               = core.WithSeed
	WithCorrectionLimit    = core.WithCorrectionLimit
	WithFractionCandidates = core.WithFractionCandidates
	WithEarlyStop          = core.WithEarlyStop
	// WithParallelism fans profile generation out across a bounded worker
	// pool; profiles stay bit-for-bit identical at any worker count.
	WithParallelism = core.WithParallelism
)

// ParseQuery parses the analytical query language; see the package
// documentation of internal/query for the grammar.
var ParseQuery = query.Parse

// Datasets lists the built-in corpus names.
var Datasets = dataset.Names

// DefaultParams returns the paper's estimator defaults (delta = 0.05,
// r = 0.99).
var DefaultParams = estimate.DefaultParams

// NewStreamingEstimator builds a streaming estimator; anyTime selects the
// uniformly-valid bound schedule required for adaptive stopping.
var NewStreamingEstimator = estimate.NewStreamingEstimator

// Detector model constructors.
var (
	YOLOv4Sim   = detect.YOLOv4Sim
	MaskRCNNSim = detect.MaskRCNNSim
	MTCNNSim    = detect.MTCNNSim
)
